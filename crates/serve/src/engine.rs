//! The micro-batching recovery engine.
//!
//! Requests are appended to a shared queue; worker threads pop *batches* —
//! a batch flushes as soon as it reaches [`EngineConfig::max_batch`]
//! requests, or when its oldest request has waited
//! [`EngineConfig::max_delay`] (continuous-batching style: size bounds
//! throughput overhead, the deadline bounds tail latency at low load).
//!
//! Each flushed batch is recovered through the **fully fused inference
//! path** against the shared read-only [`ServingModel`]: one stacked
//! encoder pass for the whole batch (every Linear/attention projection is
//! a single `[ΣL, d]` matmul; RNTrajRec's GraphNorm — whose *batch*
//! statistics are why naive cross-request fusion would change results —
//! keeps its statistics scoped per member through segmented kernels), then
//! the fused decoder runs one `[B, ·]` matmul per head per step instead of
//! `B` separate `[1, ·]` products. Every fused kernel keeps the member's
//! own per-element accumulation order, so batched results remain
//! **bit-identical** to sequential per-request inference regardless of
//! batch composition, worker count, or arrival order — property-tested in
//! this crate and in `rntrajrec-models/tests/batch_decode_parity.rs`.
//!
//! # Self-healing
//!
//! The engine is supervised. A dedicated supervisor thread:
//!
//! - **restarts crashed workers** with capped exponential backoff (a
//!   panic that escapes the per-batch isolation — e.g. an injected
//!   `engine.worker` chaos fault — kills only that thread; its in-flight
//!   batch is failed with typed errors and a replacement spawns),
//! - **watches for hung batches**: when [`EngineConfig::batch_timeout`]
//!   is set, a batch computing past the budget has its members failed
//!   with typed timeout errors (the HTTP layer maps these to `503`)
//!   instead of wedging their clients forever,
//! - **drives brownout degradation**: a [`BrownoutController`] watching
//!   queue depth and queue-wait p99 steps through degraded modes —
//!   quantized segment head, shrunk batching window, full shed — and the
//!   supervisor applies the active level to the live batching knobs,
//! - samples the **drain rate** (completions/sec) that the HTTP layer
//!   turns into adaptive `Retry-After` values.
//!
//! Deadlines propagate *into* the decode loop: a submission may carry an
//! absolute deadline, and members whose deadline expires mid-decode are
//! cancelled out of the fused batch through the decoder's
//! state-compaction path (survivors bit-identical), reported with
//! [`Recovered::timed_out`].
//!
//! Chaos fault points ([`rntrajrec_chaos`]): `engine.submit` (admission),
//! `engine.batch` (batch assembly), `engine.worker` (per batch, outside
//! panic isolation — the supervision test surface).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rntrajrec_models::SampleInput;

use crate::brownout::{mode_name, BrownoutConfig, BrownoutController};
use crate::{BatchOptions, MemberError, ServingModel};

/// Micro-batching knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Flush a batch as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush a non-empty batch once its oldest request is this old.
    pub max_delay: Duration,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Intra-op kernel threads each worker's inference may use
    /// (`rntrajrec_nn::pool`), applied process-wide at
    /// [`RecoveryEngine::start`]. `0` keeps the current process setting
    /// (`NN_THREADS` env or hardware parallelism); a set `NN_THREADS`
    /// environment variable always overrides this field. Size it so
    /// `workers × threads_per_worker ≤ cores`: workers scale throughput
    /// across requests, intra-op threads cut single-request latency —
    /// see the crate docs for the interaction.
    pub threads_per_worker: usize,
    /// Admission bound on the waiting queue: [`RecoveryEngine::submit`]
    /// rejects with [`EngineError::Overloaded`] once this many requests
    /// are already waiting (requests being *executed* in a flushed batch
    /// no longer count). `None` keeps the queue unbounded — the
    /// pre-admission-control behaviour. `Some(0)` sheds every request
    /// (useful for drain/maintenance modes and for deterministically
    /// exercising the rejection path).
    pub queue_capacity: Option<usize>,
    /// Watchdog budget for one batch's fused compute: a batch still
    /// running after this long has its members failed with typed timeout
    /// errors (`503` at the HTTP layer) so a stalled kernel cannot wedge
    /// clients forever. `None` disables the watchdog.
    pub batch_timeout: Option<Duration>,
    /// Brownout degradation watermarks; `None` disables the controller
    /// (the ladder can still be forced via
    /// [`RecoveryEngine::set_brownout_override`]).
    pub brownout: Option<BrownoutConfig>,
    /// Continuous batching: workers check the queue **between decode
    /// steps** and splice newcomers into the live fused batch (their
    /// encoder pass runs fused with co-arrivals), instead of making them
    /// wait for the next flush. Incumbent members stay bit-identical to
    /// a closed batch (every fused kernel is member-scoped). Admission
    /// respects the effective `max_batch` and is refused at brownout
    /// level ≥ 2 (`shrink_batch`). `false` restores closed batches —
    /// the pre-continuous behaviour and the bench baseline.
    pub continuous: bool,
    /// Bound on each streaming submission's step-event queue. A consumer
    /// that falls this many undelivered [`StepUpdate`]s behind the decode
    /// loop is degraded to summary-only — its step sink is closed (the
    /// terminal [`Recovered`] still arrives) and
    /// [`EngineStats::stream_lagged`] counts it — instead of buffering
    /// without bound inside the engine.
    pub stream_queue: usize,
    /// Supervisor cadence: worker reaping, watchdog scans, drain-rate
    /// sampling, and brownout ticks all run at this interval.
    pub supervise_every: Duration,
    /// Base delay before respawning a crashed worker; doubles per
    /// consecutive crash (a worker that stays up 5 s resets the streak).
    pub restart_backoff: Duration,
    /// Ceiling on the respawn delay.
    pub restart_backoff_cap: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(2, |n| n.get().min(8));
        Self {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            workers,
            // The default worker count already covers the cores; keep
            // kernels single-threaded per worker unless configured.
            threads_per_worker: if workers > 1 { 1 } else { 0 },
            queue_capacity: None,
            batch_timeout: None,
            brownout: None,
            stream_queue: 256,
            supervise_every: Duration::from_millis(10),
            restart_backoff: Duration::from_millis(10),
            restart_backoff_cap: Duration::from_secs(2),
            continuous: true,
        }
    }
}

/// Per-submission options for [`RecoveryEngine::submit`] — the one
/// submission entry point. Build with the fluent setters:
///
/// ```ignore
/// let handle = engine.submit(
///     input,
///     SubmitOptions::new()
///         .deadline(Instant::now() + Duration::from_millis(200))
///         .stream(),
/// )?;
/// ```
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Absolute deadline: past this instant the request is cancelled out
    /// of its decode batch (mid-decode, through the state-compaction
    /// path; survivors bit-identical) and completes with
    /// [`Recovered::timed_out`].
    pub deadline: Option<Instant>,
    /// Observability request id ([`rntrajrec_obs::next_request_id`]),
    /// minted by the caller at the protocol edge so engine spans join the
    /// caller's span tree. When `None` and tracing is enabled, the engine
    /// mints one so its spans stay attributable.
    pub trace: Option<rntrajrec_obs::RequestId>,
    /// Queue position: [`Priority::High`] jumps the waiting line (and is
    /// therefore also first in line for mid-decode admission).
    pub priority: Priority,
    /// Open a streaming sink: the handle's [`RecoveryHandle::steps`] /
    /// [`RecoveryHandle::next_step`] yield one [`StepUpdate`] per decoded
    /// step, before the terminal [`Recovered`].
    pub stream: bool,
}

impl SubmitOptions {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub fn trace(mut self, trace: Option<rntrajrec_obs::RequestId>) -> Self {
        self.trace = trace;
        self
    }

    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    pub fn stream(mut self) -> Self {
        self.stream = true;
        self
    }
}

/// Queue priority for a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// FIFO order (the default).
    #[default]
    Normal,
    /// Front of the waiting queue: flushed (or admitted mid-decode)
    /// before any waiting `Normal` request.
    High,
}

/// A worker that stayed up this long has its crash streak (and with it
/// the exponential backoff) reset.
const RESTART_RESET_UPTIME: Duration = Duration::from_secs(5);

/// Typed submission failure: the engine refused a request rather than
/// queueing it. Surfaced so callers (the HTTP layer maps these to `429`/
/// `503`) can shed load instead of growing the queue — and with it tail
/// latency — without bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The waiting queue is at [`EngineConfig::queue_capacity`].
    Overloaded {
        /// Requests waiting when the submission was refused.
        queue_depth: usize,
        /// The configured bound.
        capacity: usize,
    },
    /// The brownout ladder is at its `shed` level: the engine is
    /// protecting itself and refuses new work until pressure drops.
    Brownout,
    /// A chaos fault point injected an admission error
    /// (`engine.submit`); only occurs with faults armed.
    FaultInjected {
        /// The fault point that fired.
        point: &'static str,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Overloaded {
                queue_depth,
                capacity,
            } => write!(
                f,
                "engine overloaded: {queue_depth} requests waiting (capacity {capacity})"
            ),
            EngineError::Brownout => {
                write!(f, "engine shedding load: brownout ladder at 'shed'")
            }
            EngineError::FaultInjected { point } => {
                write!(f, "chaos: injected error at {point}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// One completed recovery.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// Submission id (monotonically increasing per engine).
    pub id: u64,
    /// Predicted `(segment, moving-rate)` per target step. Empty when
    /// [`Recovered::error`] is set.
    pub path: Vec<(usize, f32)>,
    /// `Some(message)` if recovery failed for this request (a malformed
    /// input, a crashed worker, a timeout); the engine itself stays up.
    pub error: Option<String>,
    /// The failure was a *time* failure — the request's deadline expired
    /// mid-decode, or the watchdog killed its hung batch. The HTTP layer
    /// maps these to `503` (retryable) rather than `500`.
    pub timed_out: bool,
    /// Size of the micro-batch this request was served in.
    pub batch_size: usize,
    /// Submit-to-completion latency
    /// (≈ [`Recovered::queue_wait`] + [`Recovered::compute`] + delivery).
    pub latency: Duration,
    /// Time spent waiting in the queue: submit → batch flush.
    pub queue_wait: Duration,
    /// Time spent in fused inference: batch flush → results ready.
    /// Shared by the whole batch (one fused pass serves every member).
    pub compute: Duration,
}

/// One decoded step of an in-flight streamed recovery, delivered through
/// [`RecoveryHandle::steps`] / [`RecoveryHandle::next_step`] as the fused
/// decoder produces it (requires [`SubmitOptions::stream`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepUpdate {
    /// Submission id (matches [`RecoveryHandle::id`]).
    pub id: u64,
    /// 0-based step index within this request's recovery; strictly
    /// monotonic per request.
    pub step: usize,
    /// Predicted road segment for this step.
    pub segment: usize,
    /// Predicted moving rate for this step.
    pub rate: f32,
    /// Log-probability of the chosen segment under the masked head.
    pub logprob: f32,
}

/// Outcome of one bounded wait for the next streamed step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepWait {
    /// A decoded step arrived.
    Step(StepUpdate),
    /// The stream is over (or the submission was not streaming): no more
    /// steps will arrive; the terminal [`Recovered`] is ready or imminent
    /// — collect it with [`RecoveryHandle::poll`] / [`RecoveryHandle::wait`].
    Finished,
    /// Nothing arrived within the timeout; the request is still decoding.
    TimedOut,
}

/// Handle to an in-flight request.
///
/// **Dropping the handle cancels the request**: an abandoned member still
/// queued is failed at admission, and one already decoding inside a fused
/// batch is cancelled between steps through the same state-compaction
/// path deadlines use (survivors bit-identical) — the engine does not
/// decode results nobody will read.
#[derive(Debug)]
pub struct RecoveryHandle {
    id: u64,
    rx: mpsc::Receiver<Recovered>,
    /// Step sink (present when submitted with [`SubmitOptions::stream`]).
    steps: Option<mpsc::Receiver<StepUpdate>>,
    /// Result cached by a successful [`RecoveryHandle::poll`].
    done: Option<Recovered>,
    /// Shared with the engine; set on drop to request cancellation.
    abandoned: Arc<AtomicBool>,
}

impl RecoveryHandle {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Non-blocking, non-consuming completion check: `Some` once the
    /// terminal result is in, caching it so later `poll`/`wait` calls
    /// return the same result without touching the channel.
    pub fn poll(&mut self) -> Option<&Recovered> {
        if self.done.is_none() {
            match self.rx.try_recv() {
                Ok(r) => self.done = Some(r),
                Err(mpsc::TryRecvError::Empty) => {}
                Err(mpsc::TryRecvError::Disconnected) => {
                    panic!("recovery engine dropped before completing request")
                }
            }
        }
        self.done.as_ref()
    }

    /// Block until the recovery completes (a trivial wrapper over the
    /// polling machinery: cached result or one blocking receive).
    pub fn wait(mut self) -> Recovered {
        if let Some(r) = self.done.take() {
            return r;
        }
        self.rx
            .recv()
            .expect("recovery engine dropped before completing request")
    }

    /// Block at most `timeout` for the result. On timeout the handle is
    /// returned so the caller can keep waiting — or drop it, which
    /// cancels the request mid-decode (see the type docs). The HTTP
    /// layer uses this for per-request deadline budgets, mapping a
    /// timeout to `503`.
    // The Err variant IS the handle, returned to the caller on purpose;
    // boxing it would push an allocation onto every deadline miss.
    #[allow(clippy::result_large_err)]
    pub fn wait_timeout(mut self, timeout: Duration) -> Result<Recovered, RecoveryHandle> {
        if let Some(r) = self.done.take() {
            return Ok(r);
        }
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Ok(r),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(self),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                panic!("recovery engine dropped before completing request")
            }
        }
    }

    /// Wait at most `timeout` for the next streamed step. Returns
    /// [`StepWait::Finished`] immediately for non-streaming submissions.
    pub fn next_step(&self, timeout: Duration) -> StepWait {
        let Some(rx) = &self.steps else {
            return StepWait::Finished;
        };
        match rx.recv_timeout(timeout) {
            Ok(s) => StepWait::Step(s),
            Err(mpsc::RecvTimeoutError::Timeout) => StepWait::TimedOut,
            Err(mpsc::RecvTimeoutError::Disconnected) => StepWait::Finished,
        }
    }

    /// Blocking iterator over the streamed steps; ends when the decode
    /// finishes (empty for non-streaming submissions). Steps per request
    /// arrive in strictly increasing `step` order.
    pub fn steps(&self) -> Steps<'_> {
        Steps {
            rx: self.steps.as_ref(),
        }
    }
}

impl Drop for RecoveryHandle {
    fn drop(&mut self) {
        // Request mid-decode cancellation for whoever stops listening —
        // the same flag-check the decode loop's cancel gate uses for
        // deadlines. Harmless after completion (nothing reads it).
        self.abandoned.store(true, Ordering::Relaxed);
    }
}

/// Blocking step iterator for a streamed recovery
/// (see [`RecoveryHandle::steps`]).
#[derive(Debug)]
pub struct Steps<'a> {
    rx: Option<&'a mpsc::Receiver<StepUpdate>>,
}

impl Iterator for Steps<'_> {
    type Item = StepUpdate;

    fn next(&mut self) -> Option<StepUpdate> {
        self.rx.and_then(|rx| rx.recv().ok())
    }
}

/// Aggregate engine counters (snapshot).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStats {
    pub requests: u64,
    pub completed: u64,
    /// Requests that completed with an error ([`Recovered::error`]):
    /// inference panics, worker crashes, watchdog timeouts, mid-decode
    /// deadline cancellations.
    pub failed: u64,
    /// Submissions refused by admission control
    /// ([`EngineError::Overloaded`] or [`EngineError::Brownout`]).
    pub rejected: u64,
    pub batches: u64,
    /// Batches flushed because they reached `max_batch`.
    pub flushed_full: u64,
    /// Batches flushed by the `max_delay` deadline (or shutdown drain).
    pub flushed_deadline: u64,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// Mean per-request queue wait (submit → batch flush), milliseconds.
    pub mean_queue_wait_ms: f64,
    /// Mean per-request compute (batch flush → results ready), ms.
    pub mean_compute_ms: f64,
    /// Crashed workers respawned by the supervisor.
    pub worker_restarts: u64,
    /// Hung batches killed by the watchdog (each fails its members).
    pub watchdog_timeouts: u64,
    /// Members cancelled mid-decode because their deadline expired.
    pub deadline_cancelled: u64,
    /// Requests spliced into an already-decoding batch between steps
    /// (continuous batching) instead of waiting for the next flush.
    pub admitted: u64,
    /// Requests cancelled because their [`RecoveryHandle`] was dropped
    /// before completion.
    pub abandoned_cancelled: u64,
    /// Brownout ladder transitions since start.
    pub brownout_shifts: u64,
    /// Streaming consumers degraded to summary-only because they fell
    /// more than [`EngineConfig::stream_queue`] undelivered steps behind
    /// the decode loop (the terminal result still arrives).
    pub stream_lagged: u64,
    /// Models hot-swapped into the live engine
    /// ([`RecoveryEngine::swap_model`]).
    pub model_swaps: u64,
    /// Active brownout mode name (`normal`, `degraded_head`,
    /// `shrink_batch`, `shed`).
    pub brownout_mode: String,
    /// Recent completion rate (requests/sec) sampled by the supervisor;
    /// the numerator of adaptive `Retry-After`.
    pub drain_rate_per_sec: f64,
    /// Recent queue-wait p99 (ms) — the latency watermark the brownout
    /// controller watches.
    pub queue_wait_p99_ms: f64,
    /// Active kernel backend (`rntrajrec_nn::kernels::backend::active_name`):
    /// `"scalar"` or `"avx2"`.
    pub kernel_backend: String,
    /// Decoder segment head the served model runs: `"sparse"` or `"int8"`.
    pub segment_head: String,
}

struct Pending {
    id: u64,
    /// Observability request id (present when the submitter traced the
    /// request, or tracing was enabled at submit).
    trace: Option<rntrajrec_obs::RequestId>,
    input: SampleInput,
    enqueued: Instant,
    /// Absolute deadline: past this instant the request is cancelled out
    /// of its decode batch rather than computed to completion.
    deadline: Option<Instant>,
    tx: mpsc::Sender<Recovered>,
    /// Per-step sink for streaming submissions (bounded; a full queue
    /// degrades the member to summary-only instead of blocking decode).
    step_tx: Option<mpsc::SyncSender<StepUpdate>>,
    /// Set by [`RecoveryHandle`]'s drop; the decode loop's cancel gate
    /// (and the admission gate) treat it like an expired deadline.
    abandoned: Arc<AtomicBool>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    flushed_full: AtomicU64,
    flushed_deadline: AtomicU64,
    batched_requests: AtomicU64,
    in_flight_batches: AtomicUsize,
    worker_restarts: AtomicU64,
    watchdog_timeouts: AtomicU64,
    deadline_cancelled: AtomicU64,
    admitted: AtomicU64,
    abandoned_cancelled: AtomicU64,
    brownout_shifts: AtomicU64,
    /// Streaming consumers degraded to summary-only because their step
    /// queue filled ([`EngineConfig::stream_queue`]).
    stream_lagged: AtomicU64,
    /// Models installed over a live engine ([`RecoveryEngine::swap_model`]).
    model_swaps: AtomicU64,
    /// Σ queue wait across completed requests, nanoseconds.
    queue_wait_ns: AtomicU64,
    /// Σ compute across completed requests, nanoseconds.
    compute_ns: AtomicU64,
}

/// What the supervisor needs to fail a worker's in-flight batch on its
/// behalf: per-member delivery channels, cloned at registration.
struct InFlight {
    started: Instant,
    batch_size: usize,
    members: Vec<(u64, Instant, mpsc::Sender<Recovered>)>,
}

/// One worker's claim slot. The worker registers its batch here before
/// computing and claims it back before delivering; the supervisor
/// (watchdog / crash reaper) can take it instead, in which case exactly
/// one side delivers.
#[derive(Default)]
struct WorkerSlot {
    inflight: Mutex<Option<InFlight>>,
}

/// Hot-swappable model slot: the engine's one indirection between "a
/// worker is about to run a batch" and "which weights it runs on".
///
/// Workers read the slot **once per decode session**, at batch assembly —
/// so a swap takes effect on the next batch, while in-flight batches
/// finish on the weights they started with (their `Arc` keeps the old
/// model alive; no drain, no pause). Zero-downtime reload is this slot
/// plus the artifact loader above it.
pub struct ModelSlot {
    inner: Mutex<Arc<ServingModel>>,
}

impl ModelSlot {
    fn new(model: Arc<ServingModel>) -> Self {
        Self {
            inner: Mutex::new(model),
        }
    }

    /// The model new batches will run on.
    pub fn current(&self) -> Arc<ServingModel> {
        Arc::clone(&self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Install `model` for all future batches; returns the one it
    /// replaced (which in-flight batches may still be running on).
    fn swap(&self, model: Arc<ServingModel>) -> Arc<ServingModel> {
        std::mem::replace(
            &mut *self.inner.lock().unwrap_or_else(|e| e.into_inner()),
            model,
        )
    }
}

struct Shared {
    model: ModelSlot,
    queue: Mutex<VecDeque<Pending>>,
    cond: Condvar,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    counters: Counters,
    /// Configured batching knobs (the brownout baseline).
    base_max_batch: usize,
    base_max_delay: Duration,
    /// *Effective* batching knobs — what `take_batch` reads; the brownout
    /// controller shrinks these under pressure.
    max_batch: AtomicUsize,
    max_delay_ns: AtomicU64,
    queue_capacity: Option<usize>,
    batch_timeout: Option<Duration>,
    /// Step-event queue bound per streaming submission
    /// ([`EngineConfig::stream_queue`]).
    stream_queue: usize,
    /// Mid-decode admission enabled ([`EngineConfig::continuous`]).
    continuous: bool,
    /// Active brownout ladder level (0..=3).
    brownout_level: AtomicU8,
    /// Manual ladder override (ops/maintenance knob and test hook);
    /// `AUTO_LEVEL` defers to the controller.
    brownout_override: AtomicU8,
    /// Recent queue-wait samples (ms), ring-buffered for the p99 the
    /// brownout controller watches.
    queue_wait_ring: Mutex<VecDeque<f64>>,
    /// f64 bits: completions/sec over the supervisor's sample window.
    drain_rate_bits: AtomicU64,
    /// f64 bits: queue-wait p99 ms over the ring.
    queue_wait_p99_bits: AtomicU64,
    supervise_every: Duration,
    restart_backoff: Duration,
    restart_backoff_cap: Duration,
}

const AUTO_LEVEL: u8 = u8::MAX;
const QUEUE_WAIT_RING_CAP: usize = 512;
/// Drain-rate window: this many supervisor ticks of (time, completed)
/// samples.
const DRAIN_SAMPLES: usize = 100;

impl Shared {
    fn level(&self) -> u8 {
        self.brownout_level.load(Ordering::Relaxed)
    }

    /// Apply a brownout ladder level to the live batching knobs.
    /// Idempotent per level; wakes batch assemblers so a shrunk
    /// `max_delay` takes effect immediately.
    fn apply_level(&self, level: u8) {
        let prev = self.brownout_level.swap(level, Ordering::Relaxed);
        if prev == level {
            return;
        }
        self.counters
            .brownout_shifts
            .fetch_add(1, Ordering::Relaxed);
        let (mb, md) = if level >= 2 {
            (
                (self.base_max_batch / 2).max(1),
                self.base_max_delay.as_nanos() as u64 / 4,
            )
        } else {
            (self.base_max_batch, self.base_max_delay.as_nanos() as u64)
        };
        self.max_batch.store(mb, Ordering::Relaxed);
        self.max_delay_ns.store(md, Ordering::Relaxed);
        self.cond.notify_all();
    }

    /// Fail a worker's in-flight batch with a typed error, if one is
    /// registered. Returns whether there was one. Exactly-once delivery:
    /// whoever takes the `InFlight` out of the slot owns delivery.
    fn fail_inflight(&self, slot: &WorkerSlot, reason: &str, timed_out: bool) -> bool {
        let taken = slot
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        let Some(flight) = taken else {
            return false;
        };
        let compute = flight.started.elapsed();
        for (id, enqueued, tx) in &flight.members {
            self.counters.completed.fetch_add(1, Ordering::Relaxed);
            self.counters.failed.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(Recovered {
                id: *id,
                path: Vec::new(),
                error: Some(reason.to_string()),
                timed_out,
                batch_size: flight.batch_size,
                latency: enqueued.elapsed(),
                queue_wait: flight.started.saturating_duration_since(*enqueued),
                compute,
            });
        }
        true
    }
}

/// The multi-threaded online recovery engine.
pub struct RecoveryEngine {
    shared: Arc<Shared>,
    /// The supervisor owns the worker handles; joining it joins them.
    supervisor: Option<JoinHandle<()>>,
    /// Intra-op threads applied at start (`None`: process default kept).
    intra_op: Option<usize>,
}

impl RecoveryEngine {
    /// Start `config.workers` threads over a shared model, plus the
    /// supervisor thread that restarts crashed workers, runs the batch
    /// watchdog, and drives brownout degradation.
    ///
    /// Also applies the intra-op kernel thread setting: `NN_THREADS` when
    /// set in the environment, else [`EngineConfig::threads_per_worker`]
    /// when non-zero. The setting is process-wide (`rntrajrec_nn::pool`),
    /// shared by all engines and kernels in the process.
    pub fn start(model: Arc<ServingModel>, config: EngineConfig) -> Self {
        assert!(config.max_batch >= 1, "max_batch must be >= 1");
        assert!(config.workers >= 1, "workers must be >= 1");
        let intra_op = rntrajrec_nn::pool::env_threads().unwrap_or(config.threads_per_worker);
        let intra_op = (intra_op > 0).then(|| rntrajrec_nn::pool::set_num_threads(intra_op));
        let shared = Arc::new(Shared {
            model: ModelSlot::new(model),
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            counters: Counters::default(),
            base_max_batch: config.max_batch,
            base_max_delay: config.max_delay,
            max_batch: AtomicUsize::new(config.max_batch),
            max_delay_ns: AtomicU64::new(config.max_delay.as_nanos() as u64),
            queue_capacity: config.queue_capacity,
            batch_timeout: config.batch_timeout,
            stream_queue: config.stream_queue.max(1),
            continuous: config.continuous,
            brownout_level: AtomicU8::new(0),
            brownout_override: AtomicU8::new(AUTO_LEVEL),
            queue_wait_ring: Mutex::new(VecDeque::with_capacity(QUEUE_WAIT_RING_CAP)),
            drain_rate_bits: AtomicU64::new(0f64.to_bits()),
            queue_wait_p99_bits: AtomicU64::new(0f64.to_bits()),
            supervise_every: config.supervise_every,
            restart_backoff: config.restart_backoff,
            restart_backoff_cap: config.restart_backoff_cap,
        });
        let workers: Vec<WorkerState> = (0..config.workers)
            .map(|i| {
                let slot = Arc::new(WorkerSlot::default());
                WorkerState {
                    index: i,
                    handle: Some(spawn_worker(&shared, &slot, i)),
                    slot,
                    spawned: Instant::now(),
                    crashes: 0,
                    respawn_at: None,
                }
            })
            .collect();
        let controller = config.brownout.map(BrownoutController::new);
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rntrajrec-supervisor".into())
                .spawn(move || supervisor_loop(&shared, workers, controller))
                .expect("spawn engine supervisor")
        };
        Self {
            shared,
            supervisor: Some(supervisor),
            intra_op,
        }
    }

    /// Enqueue a request; returns immediately with a waitable handle, or
    /// [`EngineError::Overloaded`] when the queue is at
    /// [`EngineConfig::queue_capacity`] — the typed load-shedding path
    /// (never blocks, never drops silently). Everything per-submission —
    /// deadline, trace id, priority, streaming — rides in
    /// [`SubmitOptions`]; `SubmitOptions::default()` is a plain FIFO
    /// submission.
    ///
    /// A request whose deadline passes while it is decoding inside a
    /// fused batch is cancelled through the decoder's state-compaction
    /// path (survivors bit-identical) and completes with a typed timeout
    /// ([`Recovered::timed_out`]). With [`SubmitOptions::stream`], each
    /// decoded step is delivered through the handle before the terminal
    /// result.
    pub fn submit(
        &self,
        input: SampleInput,
        opts: SubmitOptions,
    ) -> Result<RecoveryHandle, EngineError> {
        rntrajrec_chaos::point("engine.submit")
            .map_err(|f| EngineError::FaultInjected { point: f.point })?;
        if self.shared.level() >= 3 {
            self.shared
                .counters
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::Brownout);
        }
        // When tracing is on, untraced submitters still get a request id
        // so engine-side spans (queue.wait, batch.assemble, the fused
        // passes) are attributable; there is just no HTTP-side tree.
        let trace = opts
            .trace
            .or_else(|| rntrajrec_obs::enabled().then(rntrajrec_obs::next_request_id));
        let (tx, rx) = mpsc::channel();
        let (step_tx, step_rx) = if opts.stream {
            // Bounded: a consumer that stops draining steps fills this
            // and is degraded to summary-only (see the decode-loop tap),
            // so one slow stream cannot grow engine memory or stall the
            // fused batch.
            let (s_tx, s_rx) = mpsc::sync_channel(self.shared.stream_queue);
            (Some(s_tx), Some(s_rx))
        } else {
            (None, None)
        };
        let abandoned = Arc::new(AtomicBool::new(false));
        let id = {
            let mut q = self.shared.queue.lock().unwrap();
            if let Some(cap) = self.shared.queue_capacity {
                if q.len() >= cap {
                    let depth = q.len();
                    drop(q);
                    self.shared
                        .counters
                        .rejected
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(EngineError::Overloaded {
                        queue_depth: depth,
                        capacity: cap,
                    });
                }
            }
            let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
            self.shared
                .counters
                .requests
                .fetch_add(1, Ordering::Relaxed);
            let pending = Pending {
                id,
                trace,
                input,
                enqueued: Instant::now(),
                deadline: opts.deadline,
                tx,
                step_tx,
                abandoned: Arc::clone(&abandoned),
            };
            match opts.priority {
                Priority::Normal => q.push_back(pending),
                Priority::High => q.push_front(pending),
            }
            id
        };
        self.shared.cond.notify_one();
        Ok(RecoveryHandle {
            id,
            rx,
            steps: step_rx,
            done: None,
            abandoned,
        })
    }

    /// Convenience: submit and block for the result.
    ///
    /// # Panics
    /// Panics when a configured [`EngineConfig::queue_capacity`] is
    /// saturated — admission-aware callers must use
    /// [`RecoveryEngine::submit`] and shed load on
    /// [`EngineError::Overloaded`]. With the default unbounded queue this
    /// never panics.
    pub fn recover(&self, input: SampleInput) -> Recovered {
        self.submit(input, SubmitOptions::default())
            .expect("engine saturated: use submit with a bounded queue")
            .wait()
    }

    /// Snapshot of the engine counters.
    pub fn stats(&self) -> EngineStats {
        let c = &self.shared.counters;
        let batches = c.batches.load(Ordering::Relaxed);
        let batched = c.batched_requests.load(Ordering::Relaxed);
        let completed = c.completed.load(Ordering::Relaxed);
        EngineStats {
            requests: c.requests.load(Ordering::Relaxed),
            completed,
            failed: c.failed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            batches,
            flushed_full: c.flushed_full.load(Ordering::Relaxed),
            flushed_deadline: c.flushed_deadline.load(Ordering::Relaxed),
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            mean_queue_wait_ms: if completed == 0 {
                0.0
            } else {
                c.queue_wait_ns.load(Ordering::Relaxed) as f64 / completed as f64 / 1e6
            },
            mean_compute_ms: if completed == 0 {
                0.0
            } else {
                c.compute_ns.load(Ordering::Relaxed) as f64 / completed as f64 / 1e6
            },
            worker_restarts: c.worker_restarts.load(Ordering::Relaxed),
            watchdog_timeouts: c.watchdog_timeouts.load(Ordering::Relaxed),
            deadline_cancelled: c.deadline_cancelled.load(Ordering::Relaxed),
            admitted: c.admitted.load(Ordering::Relaxed),
            abandoned_cancelled: c.abandoned_cancelled.load(Ordering::Relaxed),
            brownout_shifts: c.brownout_shifts.load(Ordering::Relaxed),
            stream_lagged: c.stream_lagged.load(Ordering::Relaxed),
            model_swaps: c.model_swaps.load(Ordering::Relaxed),
            brownout_mode: mode_name(self.shared.level()).to_string(),
            drain_rate_per_sec: self.drain_rate_per_sec(),
            queue_wait_p99_ms: self.queue_wait_p99_ms(),
            kernel_backend: rntrajrec_nn::kernels::backend::active_name().to_string(),
            segment_head: self.shared.model.current().head_name().to_string(),
        }
    }

    /// Intra-op kernel threads this engine applied at start (`None` when
    /// the process default was kept).
    pub fn intra_op_threads(&self) -> Option<usize> {
        self.intra_op
    }

    /// Requests currently waiting in the queue (not yet flushed into a
    /// batch). A live gauge for `/metrics` and capacity planning.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// Micro-batches currently executing on worker threads.
    pub fn in_flight_batches(&self) -> usize {
        self.shared
            .counters
            .in_flight_batches
            .load(Ordering::Relaxed)
    }

    /// The configured admission bound (`None`: unbounded).
    pub fn queue_capacity(&self) -> Option<usize> {
        self.shared.queue_capacity
    }

    /// Active brownout ladder level (0 = normal … 3 = shed).
    pub fn brownout_level(&self) -> u8 {
        self.shared.level()
    }

    /// Active brownout mode name, as exported on `/metrics`.
    pub fn brownout_mode(&self) -> &'static str {
        mode_name(self.shared.level())
    }

    /// Force the brownout ladder to a level (ops/maintenance knob:
    /// `Some(3)` drains by shedding all new work; also the deterministic
    /// test hook). `None` returns control to the load-watermark
    /// controller. Applies immediately.
    pub fn set_brownout_override(&self, level: Option<u8>) {
        let v = level.map_or(AUTO_LEVEL, |l| l.min(3));
        self.shared.brownout_override.store(v, Ordering::Relaxed);
        if v != AUTO_LEVEL {
            self.shared.apply_level(v);
        }
    }

    /// Recent completion rate (requests/sec), sampled by the supervisor
    /// over its tick window. The denominator of adaptive `Retry-After`.
    pub fn drain_rate_per_sec(&self) -> f64 {
        f64::from_bits(self.shared.drain_rate_bits.load(Ordering::Relaxed))
    }

    /// Recent queue-wait p99 (ms), over the last
    /// [`QUEUE_WAIT_RING_CAP`]-request window.
    pub fn queue_wait_p99_ms(&self) -> f64 {
        f64::from_bits(self.shared.queue_wait_p99_bits.load(Ordering::Relaxed))
    }

    /// The model new batches will run on (e.g. for direct single-request
    /// comparison). In-flight batches may still be on a previously
    /// swapped-out model.
    pub fn model(&self) -> Arc<ServingModel> {
        self.shared.model.current()
    }

    /// Zero-downtime hot swap: install `model` for all batches assembled
    /// from now on and return the model it replaced. In-flight batches
    /// finish on the weights they started with (their cloned `Arc` keeps
    /// the old model alive) — nothing is drained, paused, or failed; the
    /// queue, counters, brownout state, and streams all carry over.
    pub fn swap_model(&self, model: Arc<ServingModel>) -> Arc<ServingModel> {
        let old = self.shared.model.swap(model);
        self.shared
            .counters
            .model_swaps
            .fetch_add(1, Ordering::Relaxed);
        old
    }

    /// Graceful stop with a final report: signals shutdown, lets workers
    /// drain the remaining queue, joins them (via the supervisor), and
    /// returns the counter snapshot *after* the drain — so requests still
    /// queued at shutdown are included. (Dropping the engine drains
    /// identically but offers no post-drain stats.)
    pub fn drain(mut self) -> EngineStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cond.notify_all();
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
    }
}

impl Drop for RecoveryEngine {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

struct WorkerState {
    index: usize,
    handle: Option<JoinHandle<()>>,
    slot: Arc<WorkerSlot>,
    spawned: Instant,
    /// Consecutive crashes (reset after [`RESTART_RESET_UPTIME`] uptime).
    crashes: u32,
    respawn_at: Option<Instant>,
}

fn spawn_worker(shared: &Arc<Shared>, slot: &Arc<WorkerSlot>, index: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    let slot = Arc::clone(slot);
    std::thread::Builder::new()
        .name(format!("rntrajrec-serve-{index}"))
        .spawn(move || worker_loop(&shared, &slot))
        .expect("spawn serve worker")
}

/// The supervisor: reaps and respawns crashed workers (capped exponential
/// backoff), fails hung batches past [`EngineConfig::batch_timeout`],
/// samples the drain rate, and drives the brownout ladder. Exits — after
/// joining every worker — once shutdown is signalled and the workers have
/// drained the queue.
fn supervisor_loop(
    shared: &Arc<Shared>,
    mut workers: Vec<WorkerState>,
    mut controller: Option<BrownoutController>,
) {
    let mut drain_samples: VecDeque<(Instant, u64)> = VecDeque::with_capacity(DRAIN_SAMPLES);
    loop {
        let draining = shared.shutdown.load(Ordering::SeqCst);

        // (1) Reap crashed workers; respawn with capped exponential
        // backoff (immediately during drain — queued requests still need
        // a worker).
        for w in workers.iter_mut() {
            if w.handle.as_ref().is_some_and(|h| h.is_finished()) {
                let crashed = w.handle.take().unwrap().join().is_err();
                if crashed {
                    // The crash may have orphaned a registered batch and
                    // its in-flight gauge increment.
                    if shared.fail_inflight(
                        &w.slot,
                        "worker crashed mid-batch; failed by supervisor",
                        false,
                    ) {
                        shared
                            .counters
                            .in_flight_batches
                            .fetch_sub(1, Ordering::Relaxed);
                    }
                    w.crashes = if w.spawned.elapsed() >= RESTART_RESET_UPTIME {
                        1
                    } else {
                        w.crashes + 1
                    };
                    let exp = w.crashes.saturating_sub(1).min(16);
                    let backoff = shared
                        .restart_backoff
                        .saturating_mul(1u32 << exp)
                        .min(shared.restart_backoff_cap);
                    w.respawn_at = Some(Instant::now() + backoff);
                }
            }
            if w.handle.is_none() && w.respawn_at.is_some() {
                let due = w.respawn_at.is_some_and(|at| Instant::now() >= at);
                if due || draining {
                    w.respawn_at = None;
                    w.spawned = Instant::now();
                    w.handle = Some(spawn_worker(shared, &w.slot, w.index));
                    shared
                        .counters
                        .worker_restarts
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // (2) Watchdog: fail batches computing past the budget. Only the
        // affected requests get errors (typed, 503 at the HTTP layer);
        // the queue and the other workers keep flowing. The worker is
        // *not* killed — if it was merely slow it will find its claim
        // slot empty and skip delivery.
        if let Some(timeout) = shared.batch_timeout {
            for w in &workers {
                let hung = w
                    .slot
                    .inflight
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .as_ref()
                    .is_some_and(|f| f.started.elapsed() >= timeout);
                if hung
                    && shared.fail_inflight(
                        &w.slot,
                        &format!(
                            "watchdog: batch exceeded {} ms compute budget",
                            timeout.as_millis()
                        ),
                        true,
                    )
                {
                    shared
                        .counters
                        .watchdog_timeouts
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // (3) Drain rate: completions/sec over the sample window.
        let completed = shared.counters.completed.load(Ordering::Relaxed);
        drain_samples.push_back((Instant::now(), completed));
        while drain_samples.len() > DRAIN_SAMPLES {
            drain_samples.pop_front();
        }
        if let (Some(&(t0, c0)), Some(&(t1, c1))) = (drain_samples.front(), drain_samples.back()) {
            let dt = t1.saturating_duration_since(t0).as_secs_f64();
            let rate = if dt > 0.0 { (c1 - c0) as f64 / dt } else { 0.0 };
            shared
                .drain_rate_bits
                .store(rate.to_bits(), Ordering::Relaxed);
        }

        // (4) Brownout: p99 over the queue-wait ring, then one controller
        // tick; a manual override preempts the controller.
        let p99 = {
            let ring = shared
                .queue_wait_ring
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            queue_wait_p99(&ring)
        };
        shared
            .queue_wait_p99_bits
            .store(p99.to_bits(), Ordering::Relaxed);
        let overridden = shared.brownout_override.load(Ordering::Relaxed);
        let level = if overridden != AUTO_LEVEL {
            overridden
        } else if let Some(ctl) = controller.as_mut() {
            let depth = shared.queue.lock().unwrap().len();
            ctl.observe(depth, p99)
        } else {
            0
        };
        shared.apply_level(level);

        // (5) Exit once shutdown is signalled and every worker has
        // drained and exited (a dead-and-unrespawned worker is respawned
        // above during drain, so `handle: None` here means clean exit).
        if draining
            && workers
                .iter()
                .all(|w| w.handle.is_none() && w.respawn_at.is_none())
        {
            break;
        }
        std::thread::sleep(shared.supervise_every);
    }
}

/// Ceil nearest-rank p99 over the ring (0 when empty).
fn queue_wait_p99(ring: &VecDeque<f64>) -> f64 {
    if ring.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = ring.iter().copied().collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((0.99 * v.len() as f64).ceil() as usize).clamp(1, v.len());
    v[rank - 1]
}

/// Pop one micro-batch (blocking) or `None` on shutdown with an empty
/// queue. Returns the flush instant alongside the batch — the boundary
/// between every member's queue-wait and the batch's compute.
fn take_batch(shared: &Shared) -> Option<(Vec<Pending>, Instant)> {
    // Fault point *before* the queue lock: an injected panic here loses
    // no requests (the queue is untouched) and must not poison the
    // mutex; a delay models slow batch assembly.
    rntrajrec_chaos::point_infallible("engine.batch");
    let mut q = shared.queue.lock().unwrap();
    let full = loop {
        let max_batch = shared.max_batch.load(Ordering::Relaxed);
        let max_delay = Duration::from_nanos(shared.max_delay_ns.load(Ordering::Relaxed));
        if q.len() >= max_batch {
            break true; // flush on size
        }
        let draining = shared.shutdown.load(Ordering::SeqCst);
        match q.front() {
            Some(oldest) => {
                let age = oldest.enqueued.elapsed();
                if draining || age >= max_delay {
                    break false; // flush on deadline (or shutdown drain)
                }
                let (guard, _) = shared.cond.wait_timeout(q, max_delay - age).unwrap();
                q = guard;
            }
            None => {
                if draining {
                    return None;
                }
                q = shared.cond.wait(q).unwrap();
            }
        }
    };
    let max_batch = shared.max_batch.load(Ordering::Relaxed);
    let take = q.len().min(max_batch);
    let batch: Vec<Pending> = q.drain(..take).collect();
    let leftovers = !q.is_empty();
    drop(q);
    if leftovers {
        // More work remains and no submit may come to notify for it:
        // wake another worker rather than leaving the leftovers to wait
        // behind this batch's inference.
        shared.cond.notify_one();
    }
    if batch.len() == max_batch && full {
        shared.counters.flushed_full.fetch_add(1, Ordering::Relaxed);
    } else {
        shared
            .counters
            .flushed_deadline
            .fetch_add(1, Ordering::Relaxed);
    }
    shared.counters.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .batched_requests
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    let taken = Instant::now();
    if rntrajrec_obs::enabled() {
        // Per-member queue.wait spans (endpoints measured across threads:
        // submit on the HTTP worker, flush here) and one batch.assemble
        // span covering oldest-enqueue → flush for all traced members.
        let taken_ns = rntrajrec_obs::instant_ns(taken);
        let mut members: Vec<rntrajrec_obs::RequestId> = Vec::new();
        let mut oldest_ns = taken_ns;
        for p in &batch {
            if let Some(req) = p.trace {
                let enq_ns = rntrajrec_obs::instant_ns(p.enqueued);
                rntrajrec_obs::record("queue.wait", &[req], enq_ns, taken_ns);
                oldest_ns = oldest_ns.min(enq_ns);
                members.push(req);
            }
        }
        if !members.is_empty() {
            rntrajrec_obs::record("batch.assemble", &members, oldest_ns, taken_ns);
        }
    }
    Some((batch, taken))
}

/// One live member of a decode session — a flushed request, or one
/// admitted mid-decode (continuous batching).
struct SessionMember {
    id: u64,
    trace: Option<rntrajrec_obs::RequestId>,
    enqueued: Instant,
    /// Queue-wait / compute boundary: the flush instant for flushed
    /// members, the admission instant for admitted ones.
    taken: Instant,
    deadline: Option<Instant>,
    tx: mpsc::Sender<Recovered>,
    step_tx: Option<mpsc::SyncSender<StepUpdate>>,
    abandoned: Arc<AtomicBool>,
    /// Why the cancel gate cut this member (when it did).
    cut: Option<CutReason>,
    /// Owned input, retained for the panic fallback — `Some` only for
    /// admitted members (flushed members' inputs live in the session's
    /// stable input vector, which the fused pass borrows).
    input: Option<SampleInput>,
}

#[derive(Clone, Copy)]
enum CutReason {
    Deadline,
    Abandoned,
}

fn worker_loop(shared: &Shared, slot: &WorkerSlot) {
    while let Some((batch, taken)) = take_batch(shared) {
        run_session(shared, slot, batch, taken);
    }
}

/// Run one decode session: the flushed batch, plus any members admitted
/// mid-decode through the continuous-batching gate. The session ends when
/// every member has finished, been cancelled, or been admitted-and-
/// finished — only then does the worker return to `take_batch`.
fn run_session(shared: &Shared, slot: &WorkerSlot, batch: Vec<Pending>, taken: Instant) {
    use std::cell::RefCell;
    use std::sync::OnceLock;
    static QUEUE_WAIT_SECONDS: OnceLock<Arc<rntrajrec_obs::metrics::Histogram>> = OnceLock::new();
    static COMPUTE_SECONDS: OnceLock<Arc<rntrajrec_obs::metrics::Histogram>> = OnceLock::new();
    static BATCH_SIZE: OnceLock<Arc<rntrajrec_obs::metrics::Histogram>> = OnceLock::new();
    static BATCH_OCCUPANCY: OnceLock<Arc<rntrajrec_obs::metrics::Histogram>> = OnceLock::new();
    static TTFS_SECONDS: OnceLock<Arc<rntrajrec_obs::metrics::Histogram>> = OnceLock::new();
    let ttfs_hist = TTFS_SECONDS.get_or_init(rntrajrec_obs::metrics::time_to_first_step);

    let batch_size = batch.len();
    BATCH_SIZE
        .get_or_init(rntrajrec_obs::metrics::batch_size)
        .observe(batch_size as f64);
    BATCH_OCCUPANCY
        .get_or_init(rntrajrec_obs::metrics::batch_occupancy)
        .observe(batch_size as f64 / shared.base_max_batch as f64);
    shared
        .counters
        .in_flight_batches
        .fetch_add(1, Ordering::Relaxed);

    // Flushed members' inputs live here, stable for the whole session,
    // so the fused pass can borrow them while the member roster grows.
    let mut initial_inputs: Vec<SampleInput> = Vec::with_capacity(batch_size);
    let mut members: Vec<SessionMember> = Vec::with_capacity(batch_size);
    for p in batch {
        initial_inputs.push(p.input);
        members.push(SessionMember {
            id: p.id,
            trace: p.trace,
            enqueued: p.enqueued,
            taken,
            deadline: p.deadline,
            tx: p.tx,
            step_tx: p.step_tx,
            abandoned: p.abandoned,
            cut: None,
            input: None,
        });
    }
    // Register the batch in the claim slot *before* any fallible work:
    // from here on, if this thread dies or stalls, the supervisor can
    // fail exactly these members on its behalf. Admitted members are
    // appended to the registration as they join.
    *slot.inflight.lock().unwrap_or_else(|e| e.into_inner()) = Some(InFlight {
        started: Instant::now(),
        batch_size,
        members: members
            .iter()
            .map(|m| (m.id, m.enqueued, m.tx.clone()))
            .collect(),
    });
    // The `engine.worker` fault point sits *outside* the per-batch
    // panic isolation on purpose: an injected panic kills this worker
    // thread — the supervision path under test. An injected delay
    // stalls the registered batch — the watchdog path. An injected
    // error fails the batch with typed errors.
    if let Err(fault) = rntrajrec_chaos::point("engine.worker") {
        if shared.fail_inflight(slot, &fault.to_string(), false) {
            shared
                .counters
                .in_flight_batches
                .fetch_sub(1, Ordering::Relaxed);
        }
        return;
    }
    let traces: Vec<rntrajrec_obs::RequestId> = members.iter().filter_map(|m| m.trace).collect();
    let degraded_head = shared.level() >= 1;
    // Read the hot-swap slot exactly once per session: every pass this
    // session runs — the fused stream, mid-decode admissions, and the
    // panic fallback — uses these weights, even if an operator installs
    // a new model mid-decode. The Arc keeps a swapped-out model alive
    // until its last in-flight session finishes.
    let model = shared.model.current();
    let session = RefCell::new(members);

    // Cancel gate, called by the decode loop before each member's step:
    // an expired deadline or an abandoned handle retires the member
    // through the state-compaction path (survivors bit-identical).
    let mut cancel = |i: usize, _step: usize| -> bool {
        let mut s = session.borrow_mut();
        let m = &mut s[i];
        if m.abandoned.load(Ordering::Relaxed) {
            m.cut = Some(CutReason::Abandoned);
            return true;
        }
        if m.deadline.is_some_and(|d| Instant::now() >= d) {
            m.cut = Some(CutReason::Deadline);
            return true;
        }
        false
    };

    // Admission gate, called by the decode loop between steps with the
    // live batch size: splice waiting requests into the running session
    // while there is room. Newcomers whose deadline already expired (or
    // whose handle is already gone) fail immediately without costing an
    // encoder pass.
    let mut admit = |live: usize| -> Vec<SampleInput> {
        if !shared.continuous || shared.level() >= 2 {
            return Vec::new();
        }
        let room = shared
            .max_batch
            .load(Ordering::Relaxed)
            .saturating_sub(live);
        if room == 0 {
            return Vec::new();
        }
        // Claim-slot guard: if the watchdog already failed this session,
        // delivery responsibility is gone — stop growing it.
        let mut flight_guard = slot.inflight.lock().unwrap_or_else(|e| e.into_inner());
        let Some(flight) = flight_guard.as_mut() else {
            return Vec::new();
        };
        let newcomers: Vec<Pending> = {
            let mut q = shared.queue.lock().unwrap();
            if q.is_empty() {
                return Vec::new();
            }
            let take = q.len().min(room);
            q.drain(..take).collect()
        };
        let now = Instant::now();
        let now_ns = rntrajrec_obs::enabled().then(|| rntrajrec_obs::instant_ns(now));
        let mut fresh = Vec::with_capacity(newcomers.len());
        let mut s = session.borrow_mut();
        for p in newcomers {
            if p.deadline.is_some_and(|d| now >= d) || p.abandoned.load(Ordering::Relaxed) {
                let timed_out = !p.abandoned.load(Ordering::Relaxed);
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                let error = if timed_out {
                    shared
                        .counters
                        .deadline_cancelled
                        .fetch_add(1, Ordering::Relaxed);
                    MemberError::DeadlineExceeded.to_string()
                } else {
                    shared
                        .counters
                        .abandoned_cancelled
                        .fetch_add(1, Ordering::Relaxed);
                    "request abandoned before decoding started".to_string()
                };
                let _ = p.tx.send(Recovered {
                    id: p.id,
                    path: Vec::new(),
                    error: Some(error),
                    timed_out,
                    batch_size: s.len(),
                    latency: p.enqueued.elapsed(),
                    queue_wait: now.saturating_duration_since(p.enqueued),
                    compute: Duration::ZERO,
                });
                continue;
            }
            shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .batched_requests
                .fetch_add(1, Ordering::Relaxed);
            if let (Some(now_ns), Some(req)) = (now_ns, p.trace) {
                let enq_ns = rntrajrec_obs::instant_ns(p.enqueued);
                rntrajrec_obs::record("queue.wait", &[req], enq_ns, now_ns);
            }
            flight.members.push((p.id, p.enqueued, p.tx.clone()));
            fresh.push(p.input.clone());
            s.push(SessionMember {
                id: p.id,
                trace: p.trace,
                enqueued: p.enqueued,
                taken: now,
                deadline: p.deadline,
                tx: p.tx,
                step_tx: p.step_tx,
                abandoned: p.abandoned,
                cut: None,
                input: Some(p.input),
            });
        }
        if !fresh.is_empty() {
            // Admission is progress: restart the watchdog budget so a
            // long-lived continuously-fed session is not mistaken for a
            // hung batch. A genuinely stalled kernel stops reaching this
            // gate, so the watchdog still fires for it.
            flight.started = Instant::now();
            flight.batch_size = s.len();
        }
        fresh
    };

    // Per-step tap: time-to-first-step on a member's first decoded step,
    // then fan out to its streaming sink (if any). The sink is bounded:
    // a consumer that has fallen `stream_queue` undelivered steps behind
    // is degraded to summary-only — its sink is closed here (ending its
    // step stream; the terminal result still arrives) rather than letting
    // one slow reader block the whole fused batch or buffer unboundedly.
    let mut on_step = |su: rntrajrec_models::StepOut| {
        let mut s = session.borrow_mut();
        let m = &mut s[su.member];
        if su.step == 0 {
            ttfs_hist.observe(m.enqueued.elapsed().as_secs_f64());
        }
        if let Some(step_tx) = &m.step_tx {
            let update = StepUpdate {
                id: m.id,
                step: su.step,
                segment: su.segment,
                rate: su.rate,
                logprob: su.logprob,
            };
            match step_tx.try_send(update) {
                Ok(()) => {}
                Err(mpsc::TrySendError::Full(_)) => {
                    shared
                        .counters
                        .stream_lagged
                        .fetch_add(1, Ordering::Relaxed);
                    m.step_tx = None;
                }
                // Receiver already gone (handle dropped its step iterator
                // or the connection died): stop producing for it.
                Err(mpsc::TrySendError::Disconnected(_)) => m.step_tx = None,
            }
        }
    };

    // The session goes through the fused inference path: one stacked
    // encoder pass (GraphNorm statistics per member), stacked [B, ·]
    // decoder steps, and — under continuous batching — admissions fused
    // per arrival wave. Results stay bit-identical to per-request
    // inference regardless of batch composition *or admission timing*.
    let input_refs: Vec<&SampleInput> = initial_inputs.iter().collect();
    let outcome = {
        // Attribute every span and kernel event of the fused pass to
        // all traced members. The scope must drop (flushing this
        // thread's span buffer to the global store) *before* results
        // are delivered below, so a client that answers immediately
        // already sees its batch spans in `/debug/trace`.
        let _scope = rntrajrec_obs::request_scope(&traces);
        model.recover_batch_stream(
            &input_refs,
            degraded_head,
            &mut rntrajrec::StreamCtl {
                cancel: &mut cancel,
                admit: &mut admit,
                on_step: &mut on_step,
            },
        )
    };
    let done = Instant::now();
    let compute = done.saturating_duration_since(taken);
    // Decrement before delivering: a client unblocked by `send` below
    // must observe the gauge already back at zero (compute is over;
    // only delivery remains).
    shared
        .counters
        .in_flight_batches
        .fetch_sub(1, Ordering::Relaxed);
    // Claim the session back. If the watchdog failed it while we were
    // computing, delivery (and its counters) already happened — drop
    // our results on the floor and move on.
    if slot
        .inflight
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .is_none()
    {
        return;
    }
    COMPUTE_SECONDS
        .get_or_init(|| rntrajrec_obs::metrics::phase_seconds("compute"))
        .observe_duration(compute);
    let queue_wait_hist =
        QUEUE_WAIT_SECONDS.get_or_init(|| rntrajrec_obs::metrics::phase_seconds("queue_wait"));

    let members = session.into_inner();
    let final_size = members.len();
    // Per-member results: the streamed outcome, or — if the fused pass
    // panicked (e.g. an input built against a different road network
    // tripping a shape assert) — a closed-batch re-run over the whole
    // session, whose internal per-member fallback fails only the bad
    // member, never the worker thread.
    let results: Vec<Result<Vec<(usize, f32)>, MemberError>> = match outcome {
        Ok((paths, cancelled)) => paths
            .into_iter()
            .zip(cancelled)
            .zip(&members)
            .map(|((path, cut), m)| {
                if cut {
                    match m.cut {
                        Some(CutReason::Abandoned) => Err(MemberError::Failed(
                            "request abandoned; cancelled mid-decode".to_string(),
                        )),
                        _ => Err(MemberError::DeadlineExceeded),
                    }
                } else {
                    Ok(path)
                }
            })
            .collect(),
        Err(_panic) => {
            let all_inputs: Vec<&SampleInput> = members
                .iter()
                .enumerate()
                .map(|(i, m)| m.input.as_ref().unwrap_or_else(|| &initial_inputs[i]))
                .collect();
            let opts = BatchOptions {
                deadlines: members.iter().map(|m| m.deadline).collect(),
                degraded_head,
            };
            model.recover_batch_opts(&all_inputs, &opts)
        }
    };
    let mut wait_samples: Vec<f64> = Vec::with_capacity(final_size);
    for (m, result) in members.iter().zip(results) {
        shared.counters.completed.fetch_add(1, Ordering::Relaxed);
        let (path, error, timed_out) = match result {
            Ok(path) => (path, None, false),
            Err(MemberError::DeadlineExceeded) => {
                shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .deadline_cancelled
                    .fetch_add(1, Ordering::Relaxed);
                (
                    Vec::new(),
                    Some(MemberError::DeadlineExceeded.to_string()),
                    true,
                )
            }
            Err(MemberError::Failed(msg)) => {
                shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                if matches!(m.cut, Some(CutReason::Abandoned)) {
                    shared
                        .counters
                        .abandoned_cancelled
                        .fetch_add(1, Ordering::Relaxed);
                }
                (Vec::new(), Some(msg), false)
            }
        };
        let queue_wait = m.taken.saturating_duration_since(m.enqueued);
        let member_compute = done.saturating_duration_since(m.taken);
        shared
            .counters
            .queue_wait_ns
            .fetch_add(queue_wait.as_nanos() as u64, Ordering::Relaxed);
        shared
            .counters
            .compute_ns
            .fetch_add(member_compute.as_nanos() as u64, Ordering::Relaxed);
        queue_wait_hist.observe_duration(queue_wait);
        wait_samples.push(queue_wait.as_secs_f64() * 1e3);
        let _ = m.tx.send(Recovered {
            id: m.id,
            path,
            error,
            timed_out,
            batch_size: final_size,
            latency: m.enqueued.elapsed(),
            queue_wait,
            compute: member_compute,
        });
    }
    // Feed the brownout controller's latency watermark.
    let mut ring = shared
        .queue_wait_ring
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    for w in wait_samples {
        if ring.len() == QUEUE_WAIT_RING_CAP {
            ring.pop_front();
        }
        ring.push_back(w);
    }
}
