use std::process::Command;

fn main() {
    // Bake the short git revision into the binary for
    // `rntrajrec_build_info`. Outside a git checkout (e.g. a source
    // tarball) fall back to "unknown" rather than failing the build.
    let sha = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=RNTRAJREC_GIT_SHA={sha}");
    // Re-run when HEAD moves so the sha stays honest in dev builds.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
