//! Synthetic trajectory data for the RNTrajRec reproduction.
//!
//! The paper trains on proprietary taxi GPS datasets (Shanghai-L, Chengdu,
//! Porto — Table II). Those are not available, so this crate simulates the
//! generating process the paper describes:
//!
//! 1. vehicles drive **time-shortest routes** on the road network
//!    (ramps/elevated expressways become attractive exactly as in a real
//!    city),
//! 2. ground truth is the **map-matched ϵρ-sample-interval trajectory**
//!    (Definition 3): `(segment, moving-ratio)` at a fixed interval,
//! 3. raw GPS points are the true positions plus Gaussian sensor noise,
//! 4. the model input is a **down-sampled** raw trajectory keeping every
//!    8th / 16th point (ϵτ = ϵρ·8 or ϵρ·16, Section VI-A1).
//!
//! [`datasets`] provides named configurations whose *relative* scales mirror
//! Table II (Chengdu: small dense area, shortest ϵρ·count; Shanghai-L:
//! largest area; Porto: mid) at laptop-friendly absolute sizes.

pub mod datasets;
mod simulate;
mod trajectory;

pub use datasets::{DatasetConfig, SplitDataset};
pub use simulate::{gauss, SimConfig, Simulator};
pub use trajectory::{
    MatchedPoint, MatchedTrajectory, RawPoint, RawTrajectory, TimeContext, TrajSample,
};
