//! Named dataset configurations mirroring Table II, and the split builder.
//!
//! Absolute sizes are laptop-scale (the paper used 150 k trajectories per
//! city on a 24 GB GPU); *relative* scales follow Table II:
//!
//! | config       | paper area (km²) | paper #segs | ϵρ (s) | here            |
//! |--------------|------------------|-------------|--------|-----------------|
//! | `chengdu`    | 8.3 × 8.3        | 8 781       | 12     | 8×8 blocks      |
//! | `porto`      | 6.8 × 7.2        | 12 613      | 15     | 7×7 dense blocks|
//! | `shanghai_l` | 23.0 × 30.8      | 34 986      | 10     | 12×14 blocks    |
//! | `shanghai`   | 6.4 × 14.4       | 9 298       | 10     | 6×12 blocks     |
//! | `chengdu_few`| same as chengdu, ~20 % of the trajectories              |

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rntrajrec_roadnet::{CityConfig, SyntheticCity};

use crate::{SimConfig, Simulator, TrajSample};

/// Everything needed to build one named dataset.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    pub name: &'static str,
    pub city: CityConfig,
    pub sim: SimConfig,
    /// Down-sampling factor: ϵτ = ϵρ · factor (8 or 16 in the paper).
    pub downsample: usize,
    /// Total number of trajectories (split 7:2:1).
    pub num_trajectories: usize,
    /// Fraction of trips forced to depart on the elevated/trunk corridor so
    /// the robustness study (Fig. 4) has enough hard cases.
    pub corridor_fraction: f64,
    pub seed: u64,
}

impl DatasetConfig {
    /// Chengdu: compact dense grid, ϵρ = 12 s (Table II row 2).
    pub fn chengdu(downsample: usize, num_trajectories: usize) -> Self {
        Self {
            name: "chengdu",
            city: CityConfig {
                blocks_x: 8,
                blocks_y: 8,
                block_min_m: 120.0,
                block_max_m: 240.0,
                seed: 101,
                ..CityConfig::default()
            },
            sim: SimConfig {
                eps_rho_s: 12.0,
                speed_scale: 2.0,
                ..SimConfig::default()
            },
            downsample,
            num_trajectories,
            corridor_fraction: 0.3,
            seed: 1001,
        }
    }

    /// Porto: slightly smaller but denser network, ϵρ = 15 s.
    pub fn porto(downsample: usize, num_trajectories: usize) -> Self {
        Self {
            name: "porto",
            city: CityConfig {
                blocks_x: 7,
                blocks_y: 7,
                block_min_m: 90.0,
                block_max_m: 180.0,
                arterial_every: 3,
                seed: 202,
                ..CityConfig::default()
            },
            sim: SimConfig {
                eps_rho_s: 15.0,
                speed_scale: 2.0,
                ..SimConfig::default()
            },
            downsample,
            num_trajectories,
            corridor_fraction: 0.3,
            seed: 2002,
        }
    }

    /// Shanghai-L: the scalability config — largest area and segment count,
    /// ϵρ = 10 s.
    pub fn shanghai_l(downsample: usize, num_trajectories: usize) -> Self {
        Self {
            name: "shanghai_l",
            city: CityConfig {
                blocks_x: 12,
                blocks_y: 14,
                block_min_m: 130.0,
                block_max_m: 280.0,
                seed: 303,
                ..CityConfig::default()
            },
            sim: SimConfig {
                eps_rho_s: 10.0,
                speed_scale: 2.0,
                ..SimConfig::default()
            },
            downsample,
            num_trajectories,
            corridor_fraction: 0.3,
            seed: 3003,
        }
    }

    /// Shanghai (Table IV): a different, mid-sized Shanghai area.
    pub fn shanghai(downsample: usize, num_trajectories: usize) -> Self {
        Self {
            name: "shanghai",
            city: CityConfig {
                blocks_x: 6,
                blocks_y: 12,
                block_min_m: 120.0,
                block_max_m: 260.0,
                seed: 404,
                ..CityConfig::default()
            },
            sim: SimConfig {
                eps_rho_s: 10.0,
                speed_scale: 2.0,
                ..SimConfig::default()
            },
            downsample,
            num_trajectories,
            corridor_fraction: 0.3,
            seed: 4004,
        }
    }

    /// Chengdu-Few (Table IV): identical city/settings to Chengdu but ~20 %
    /// of the trajectories.
    pub fn chengdu_few(downsample: usize, chengdu_trajectories: usize) -> Self {
        let mut c = Self::chengdu(downsample, (chengdu_trajectories / 5).max(10));
        c.name = "chengdu_few";
        c.seed = 5005;
        c
    }

    /// A minimal configuration for unit tests (fast to generate & train).
    pub fn tiny(downsample: usize, num_trajectories: usize) -> Self {
        Self {
            name: "tiny",
            city: CityConfig::tiny(),
            sim: SimConfig {
                target_len: 17,
                ..SimConfig::default()
            },
            downsample,
            num_trajectories,
            corridor_fraction: 0.3,
            seed: 42,
        }
    }
}

/// Summary statistics for Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    pub name: &'static str,
    pub num_trajectories: usize,
    pub num_segments: usize,
    pub area_km2: (f64, f64),
    pub avg_travel_time_s: f64,
    pub raw_interval_s: f64,
    pub eps_rho_s: f64,
    pub eps_tau_s: f64,
}

/// A generated dataset with 7:2:1 train/validation/test split.
pub struct SplitDataset {
    pub city: SyntheticCity,
    pub train: Vec<TrajSample>,
    pub valid: Vec<TrajSample>,
    pub test: Vec<TrajSample>,
    pub config: DatasetConfig,
}

impl SplitDataset {
    /// Generate the city and all trajectories, deterministically from the
    /// config seed.
    pub fn generate(config: DatasetConfig) -> Self {
        let city = SyntheticCity::generate(config.city.clone());
        let mut sim = Simulator::new(&city.net, config.sim.clone());
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut samples = Vec::with_capacity(config.num_trajectories);
        let corridor: Vec<_> = city
            .elevated
            .iter()
            .chain(&city.trunk_under_elevated)
            .copied()
            .collect();
        for _ in 0..config.num_trajectories {
            let s = if !corridor.is_empty() && rng.gen_bool(config.corridor_fraction) {
                let origin = corridor[rng.gen_range(0..corridor.len())];
                sim.sample_from(&mut rng, origin, config.downsample)
            } else {
                sim.sample(&mut rng, config.downsample)
            };
            samples.push(s);
        }
        drop(sim);

        let n = samples.len();
        let n_train = n * 7 / 10;
        let n_valid = n * 2 / 10;
        let test = samples.split_off(n_train + n_valid);
        let valid = samples.split_off(n_train);
        SplitDataset {
            city,
            train: samples,
            valid,
            test,
            config,
        }
    }

    pub fn all_samples(&self) -> impl Iterator<Item = &TrajSample> {
        self.train.iter().chain(&self.valid).chain(&self.test)
    }

    /// Table II row for this dataset.
    pub fn stats(&self) -> DatasetStats {
        let b = self.city.net.bbox();
        let n = self.config.num_trajectories.max(1);
        let avg_tt = self
            .all_samples()
            .map(|s| s.target.points.last().map_or(0.0, |p| p.t))
            .sum::<f64>()
            / n as f64;
        DatasetStats {
            name: self.config.name,
            num_trajectories: self.config.num_trajectories,
            num_segments: self.city.net.num_segments(),
            area_km2: (b.width() / 1000.0, b.height() / 1000.0),
            avg_travel_time_s: avg_tt,
            raw_interval_s: self.config.sim.eps_rho_s,
            eps_rho_s: self.config.sim.eps_rho_s,
            eps_tau_s: self.config.sim.eps_rho_s * self.config.downsample as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_proportions() {
        let ds = SplitDataset::generate(DatasetConfig::tiny(8, 20));
        assert_eq!(ds.train.len(), 14);
        assert_eq!(ds.valid.len(), 4);
        assert_eq!(ds.test.len(), 2);
    }

    #[test]
    fn all_targets_have_configured_length() {
        let ds = SplitDataset::generate(DatasetConfig::tiny(8, 10));
        for s in ds.all_samples() {
            assert_eq!(s.target.len(), 17);
            assert_eq!(s.raw.len(), 3); // 0,8,16
        }
    }

    #[test]
    fn stats_reflect_config() {
        let ds = SplitDataset::generate(DatasetConfig::tiny(16, 10));
        let st = ds.stats();
        assert_eq!(st.eps_tau_s, 12.0 * 16.0);
        assert_eq!(st.num_segments, ds.city.net.num_segments());
        assert!(st.avg_travel_time_s > 0.0);
        assert!(st.area_km2.0 > 0.0 && st.area_km2.1 > 0.0);
    }

    #[test]
    fn generation_deterministic() {
        let a = SplitDataset::generate(DatasetConfig::tiny(8, 6));
        let b = SplitDataset::generate(DatasetConfig::tiny(8, 6));
        for (x, y) in a.all_samples().zip(b.all_samples()) {
            assert_eq!(x.target, y.target);
            assert_eq!(x.raw, y.raw);
        }
    }

    #[test]
    fn corridor_fraction_biases_departures() {
        let mut cfg = DatasetConfig::tiny(8, 40);
        cfg.corridor_fraction = 1.0;
        let ds = SplitDataset::generate(cfg);
        let corridor: std::collections::HashSet<_> = ds
            .city
            .elevated
            .iter()
            .chain(&ds.city.trunk_under_elevated)
            .copied()
            .collect();
        let on_corridor = ds
            .all_samples()
            .filter(|s| corridor.contains(&s.target.points[0].pos.seg))
            .count();
        assert_eq!(on_corridor, 40);
    }

    #[test]
    fn named_configs_have_expected_relative_scales() {
        // Compare segment counts without generating trajectories.
        let chengdu = SyntheticCity::generate(DatasetConfig::chengdu(8, 1).city);
        let shanghai_l = SyntheticCity::generate(DatasetConfig::shanghai_l(8, 1).city);
        assert!(
            shanghai_l.net.num_segments() > chengdu.net.num_segments(),
            "Shanghai-L must be the largest network"
        );
        let few = DatasetConfig::chengdu_few(8, 100);
        assert_eq!(few.num_trajectories, 20);
        assert_eq!(few.city.seed, DatasetConfig::chengdu(8, 100).city.seed);
    }
}
