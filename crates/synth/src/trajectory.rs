//! Trajectory types: raw GPS sequences and map-matched sequences.

use rntrajrec_geo::XY;
use rntrajrec_roadnet::{RoadNetwork, RoadPosition, SegmentId};

/// One raw GPS observation: noisy planar position + relative timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawPoint {
    pub xy: XY,
    /// Seconds since the first point of the trajectory.
    pub t: f64,
}

/// A raw GPS trajectory `τ` (Definition 2): what the sensor reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RawTrajectory {
    pub points: Vec<RawPoint>,
}

impl RawTrajectory {
    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Average sample interval ϵτ in seconds (0 for < 2 points).
    pub fn avg_interval_s(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        let span = self.points.last().unwrap().t - self.points[0].t;
        span / (self.points.len() - 1) as f64
    }

    /// Keep every `k`-th point starting at index 0; the final point is
    /// always retained so the recovered window is fully covered.
    pub fn downsample(&self, k: usize) -> RawTrajectory {
        assert!(k >= 1);
        let mut points: Vec<RawPoint> = self.points.iter().copied().step_by(k).collect();
        if let Some(&last) = self.points.last() {
            if points.last() != Some(&last) {
                points.push(last);
            }
        }
        RawTrajectory { points }
    }
}

/// One map-matched sample: `(segment, moving ratio)` + relative timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchedPoint {
    pub pos: RoadPosition,
    pub t: f64,
}

/// A map-matched ϵρ-sample-interval trajectory `ρ` (Definition 3) — the
/// recovery target.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatchedTrajectory {
    pub points: Vec<MatchedPoint>,
}

impl MatchedTrajectory {
    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The travel path `E_ρ`: consecutive-deduplicated segment sequence
    /// (used by the Recall/Precision/F1 metrics, Section VI-A2).
    pub fn travel_path(&self) -> Vec<SegmentId> {
        let mut out: Vec<SegmentId> = Vec::with_capacity(self.points.len());
        for p in &self.points {
            if out.last() != Some(&p.pos.seg) {
                out.push(p.pos.seg);
            }
        }
        out
    }

    /// Planar positions of all samples.
    pub fn xys(&self, net: &RoadNetwork) -> Vec<XY> {
        self.points.iter().map(|p| p.pos.xy(net)).collect()
    }
}

/// Hour-of-day / holiday context (`f_e`, Section IV-F: 24-dim one-hot
/// hour and a holiday flag). Derived from an absolute departure timestamp
/// on a synthetic calendar where days 5 and 6 of each week are holidays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeContext {
    pub hour: u8,
    pub holiday: bool,
}

impl TimeContext {
    /// Derive from an absolute timestamp in seconds (epoch 0 = Monday 00:00).
    pub fn from_epoch_s(t: f64) -> Self {
        let day = (t / 86_400.0).floor() as i64;
        let hour = ((t - day as f64 * 86_400.0) / 3600.0).floor() as u8;
        Self {
            hour: hour.min(23),
            holiday: day.rem_euclid(7) >= 5,
        }
    }

    /// Whether this hour falls in the simulated rush (affects speeds).
    pub fn is_rush_hour(&self) -> bool {
        !self.holiday && ((7..=9).contains(&self.hour) || (17..=19).contains(&self.hour))
    }

    /// 25-dim feature vector: hour one-hot ++ holiday flag.
    pub fn features(&self) -> [f32; 25] {
        let mut f = [0.0; 25];
        f[self.hour as usize] = 1.0;
        f[24] = self.holiday as u8 as f32;
        f
    }
}

/// A complete supervised sample: low-sample noisy input + ϵρ ground truth.
#[derive(Debug, Clone)]
pub struct TrajSample {
    /// Low-sample raw input `τ` (length `l_τ`).
    pub raw: RawTrajectory,
    /// Ground-truth map-matched ϵρ-interval trajectory `ρ` (length `l_ρ`).
    pub target: MatchedTrajectory,
    /// Absolute departure time (synthetic calendar seconds).
    pub depart_epoch_s: f64,
}

impl TrajSample {
    pub fn time_context(&self) -> TimeContext {
        TimeContext::from_epoch_s(self.depart_epoch_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rntrajrec_geo::Polyline;
    use rntrajrec_roadnet::{RoadLevel, RoadNetworkBuilder};

    fn raw(n: usize, dt: f64) -> RawTrajectory {
        RawTrajectory {
            points: (0..n)
                .map(|i| RawPoint {
                    xy: XY::new(i as f64, 0.0),
                    t: i as f64 * dt,
                })
                .collect(),
        }
    }

    #[test]
    fn avg_interval() {
        assert_eq!(raw(5, 12.0).avg_interval_s(), 12.0);
        assert_eq!(raw(1, 12.0).avg_interval_s(), 0.0);
    }

    #[test]
    fn downsample_keeps_ends() {
        let t = raw(33, 10.0);
        let d = t.downsample(8);
        assert_eq!(d.len(), 5); // indices 0,8,16,24,32
        assert_eq!(d.points[0], t.points[0]);
        assert_eq!(*d.points.last().unwrap(), *t.points.last().unwrap());
        assert!((d.avg_interval_s() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn downsample_appends_tail_when_not_divisible() {
        let t = raw(10, 10.0);
        let d = t.downsample(4); // 0,4,8 then forced 9
        assert_eq!(d.len(), 4);
        assert_eq!(d.points.last().unwrap().t, 90.0);
    }

    #[test]
    fn downsample_k1_is_identity() {
        let t = raw(7, 5.0);
        assert_eq!(t.downsample(1), t);
    }

    #[test]
    fn travel_path_dedups_consecutive() {
        let mk = |seg: u32, frac: f64, t: f64| MatchedPoint {
            pos: RoadPosition::new(SegmentId(seg), frac),
            t,
        };
        let traj = MatchedTrajectory {
            points: vec![
                mk(0, 0.1, 0.0),
                mk(0, 0.6, 10.0),
                mk(1, 0.2, 20.0),
                mk(0, 0.5, 30.0),
            ],
        };
        assert_eq!(
            traj.travel_path(),
            vec![SegmentId(0), SegmentId(1), SegmentId(0)]
        );
    }

    #[test]
    fn xys_match_positions() {
        let mut b = RoadNetworkBuilder::new();
        b.add_segment(
            Polyline::segment(XY::new(0.0, 0.0), XY::new(100.0, 0.0)),
            RoadLevel::Primary,
        );
        let net = b.build();
        let traj = MatchedTrajectory {
            points: vec![MatchedPoint {
                pos: RoadPosition::new(SegmentId(0), 0.5),
                t: 0.0,
            }],
        };
        assert_eq!(traj.xys(&net), vec![XY::new(50.0, 0.0)]);
    }

    #[test]
    fn time_context_hours_and_holidays() {
        // Monday 08:30.
        let c = TimeContext::from_epoch_s(8.5 * 3600.0);
        assert_eq!(c.hour, 8);
        assert!(!c.holiday);
        assert!(c.is_rush_hour());
        // Saturday (day 5) 08:30 — holiday, no rush.
        let c = TimeContext::from_epoch_s(5.0 * 86_400.0 + 8.5 * 3600.0);
        assert!(c.holiday);
        assert!(!c.is_rush_hour());
        // Tuesday 03:00 — off-peak.
        let c = TimeContext::from_epoch_s(86_400.0 + 3.0 * 3600.0);
        assert!(!c.is_rush_hour());
    }

    #[test]
    fn time_context_features_one_hot() {
        let c = TimeContext {
            hour: 17,
            holiday: true,
        };
        let f = c.features();
        assert_eq!(f[17], 1.0);
        assert_eq!(f[24], 1.0);
        assert_eq!(f.iter().sum::<f32>(), 2.0);
    }
}
