//! The trajectory simulator: time-shortest routes + speed process + GPS noise.

use rand::rngs::StdRng;
use rand::Rng;

use rntrajrec_geo::XY;
use rntrajrec_roadnet::{RoadNetwork, RoadPosition, SegmentId, ShortestPaths};

use crate::{MatchedPoint, MatchedTrajectory, RawPoint, RawTrajectory, TimeContext, TrajSample};

/// Standard normal sample via Box–Muller (rand_distr is not a dependency).
pub fn gauss(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Simulation parameters. Defaults follow the paper's processed datasets:
/// ϵρ ≈ 10–15 s ground-truth interval, GPS noise of urban magnitude, and
/// ~6–15 min trips (Table II reports 700–870 s average travel time).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Ground-truth sample interval ϵρ, seconds.
    pub eps_rho_s: f64,
    /// Ground-truth trajectory length `l_ρ` (number of samples).
    pub target_len: usize,
    /// GPS noise standard deviation per axis, metres.
    pub gps_noise_std_m: f64,
    /// Log-normal σ of per-segment speed jitter.
    pub speed_jitter: f64,
    /// Multiplicative slowdown during rush hours.
    pub rush_slowdown: f64,
    /// Departure times are drawn uniformly over this many calendar days.
    pub calendar_days: u64,
    /// Multiplier on all free-flow speeds. Controls the ratio of the
    /// inter-observation gap to the block size: at 1.0 the ϵτ = 8·ϵρ gap is
    /// ~0.5 km (interpolation-friendly); at 2.0 it is ~1 km, matching the
    /// paper's city-scale datasets where interpolation fails.
    pub speed_scale: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            eps_rho_s: 12.0,
            target_len: 33,
            gps_noise_std_m: 8.0,
            speed_jitter: 0.25,
            rush_slowdown: 0.6,
            calendar_days: 28,
            speed_scale: 1.0,
        }
    }
}

/// One leg of a drive plan: a segment traversed at constant speed.
#[derive(Debug, Clone, Copy)]
struct Leg {
    seg: SegmentId,
    /// Offset (m) at which the vehicle enters the segment (non-zero only
    /// for the first leg).
    start_off_m: f64,
    len_m: f64,
    speed_mps: f64,
}

/// Generates ground-truth + raw GPS trajectories on a road network.
pub struct Simulator<'a> {
    net: &'a RoadNetwork,
    sp: ShortestPaths,
    pub config: SimConfig,
}

impl<'a> Simulator<'a> {
    pub fn new(net: &'a RoadNetwork, config: SimConfig) -> Self {
        Self {
            net,
            sp: ShortestPaths::new(net),
            config,
        }
    }

    pub fn net(&self) -> &RoadNetwork {
        self.net
    }

    /// Simulate one trip from a random origin.
    pub fn sample(&mut self, rng: &mut StdRng, downsample: usize) -> TrajSample {
        let origin = SegmentId(rng.gen_range(0..self.net.num_segments() as u32));
        self.sample_from(rng, origin, downsample)
    }

    /// Simulate one trip departing from `origin` (used to bias traffic onto
    /// the elevated corridor for the robustness study).
    pub fn sample_from(
        &mut self,
        rng: &mut StdRng,
        origin: SegmentId,
        downsample: usize,
    ) -> TrajSample {
        let depart_epoch_s = rng.gen_range(0.0..self.config.calendar_days as f64 * 86_400.0);
        let ctx = TimeContext::from_epoch_s(depart_epoch_s);
        let rush = self.config.speed_scale
            * if ctx.is_rush_hour() {
                self.config.rush_slowdown
            } else {
                1.0
            };

        let needed_s = (self.config.target_len - 1) as f64 * self.config.eps_rho_s;
        let legs = self.build_route(rng, origin, needed_s, rush);
        let (target, true_xy) = self.drive(&legs);

        // Raw GPS = true position + isotropic Gaussian noise, dense rate ϵρ.
        let noise = self.config.gps_noise_std_m;
        let dense = RawTrajectory {
            points: true_xy
                .iter()
                .zip(&target.points)
                .map(|(xy, mp)| RawPoint {
                    xy: XY::new(xy.x + noise * gauss(rng), xy.y + noise * gauss(rng)),
                    t: mp.t,
                })
                .collect(),
        };
        TrajSample {
            raw: dense.downsample(downsample),
            target,
            depart_epoch_s,
        }
    }

    /// Simulate and keep the *dense* noisy raw trajectory (sample interval
    /// ϵρ) — the input to the HMM ground-truth pipeline tests.
    pub fn sample_dense(&mut self, rng: &mut StdRng, origin: SegmentId) -> TrajSample {
        self.sample_from(rng, origin, 1)
    }

    /// Chain time-shortest routes to random destinations until the drive
    /// plan covers `needed_s` seconds.
    fn build_route(
        &mut self,
        rng: &mut StdRng,
        origin: SegmentId,
        needed_s: f64,
        rush: f64,
    ) -> Vec<Leg> {
        let start_frac: f64 = rng.gen_range(0.0..0.5);
        let mut legs: Vec<Leg> = Vec::new();
        let seg0 = self.net.segment(origin);
        let len0 = seg0.length();
        legs.push(Leg {
            seg: origin,
            start_off_m: start_frac * len0,
            len_m: len0,
            speed_mps: jittered_speed(
                rng,
                seg0.level.freeflow_speed(),
                self.config.speed_jitter,
                rush,
            ),
        });
        let mut total_s = (legs[0].len_m - legs[0].start_off_m) / legs[0].speed_mps;

        let n = self.net.num_segments() as u32;
        let mut guard = 0;
        while total_s < needed_s {
            guard += 1;
            assert!(
                guard < 1000,
                "route construction failed to reach the needed duration"
            );
            let last = legs.last().unwrap().seg;
            // Prefer *far* destinations (best of a small candidate pool):
            // real trips are mostly direct journeys, not random walks, and
            // predictable movement is what the recovery models exploit.
            let last_mid = self.net.segment(last).geometry.point_at_fraction(0.5);
            let mut dest = last;
            let mut best_d = -1.0;
            for _ in 0..8 {
                let cand = SegmentId(rng.gen_range(0..n));
                if cand == last {
                    continue;
                }
                let d = last_mid.dist(&self.net.segment(cand).geometry.point_at_fraction(0.5));
                if d > best_d {
                    best_d = d;
                    dest = cand;
                }
            }
            if dest == last {
                continue;
            }
            // Time-shortest route: weight = length / free-flow speed.
            let net = self.net;
            self.sp.run_with(net, last, Some(dest), f64::INFINITY, |s| {
                let seg = net.segment(s);
                seg.length() / seg.level.freeflow_speed()
            });
            let Some(route) = self.sp.route(last, dest) else {
                continue;
            };
            for &seg_id in &route[1..] {
                let seg = self.net.segment(seg_id);
                let speed = jittered_speed(
                    rng,
                    seg.level.freeflow_speed(),
                    self.config.speed_jitter,
                    rush,
                );
                let leg = Leg {
                    seg: seg_id,
                    start_off_m: 0.0,
                    len_m: seg.length(),
                    speed_mps: speed,
                };
                total_s += leg.len_m / leg.speed_mps;
                legs.push(leg);
                if total_s >= needed_s {
                    break;
                }
            }
        }
        legs
    }

    /// Walk the drive plan emitting ϵρ-spaced ground-truth samples.
    fn drive(&self, legs: &[Leg]) -> (MatchedTrajectory, Vec<XY>) {
        // Cumulative time at the *start* of each leg.
        let mut cum = Vec::with_capacity(legs.len() + 1);
        let mut acc = 0.0;
        for leg in legs {
            cum.push(acc);
            acc += (leg.len_m - leg.start_off_m) / leg.speed_mps;
        }
        cum.push(acc);

        let mut points = Vec::with_capacity(self.config.target_len);
        let mut xys = Vec::with_capacity(self.config.target_len);
        let mut leg_i = 0usize;
        for k in 0..self.config.target_len {
            let t = k as f64 * self.config.eps_rho_s;
            while leg_i + 1 < legs.len() && cum[leg_i + 1] <= t {
                leg_i += 1;
            }
            let leg = &legs[leg_i];
            let off = (leg.start_off_m + (t - cum[leg_i]) * leg.speed_mps).min(leg.len_m);
            let frac = if leg.len_m <= f64::EPSILON {
                0.0
            } else {
                off / leg.len_m
            };
            let pos = RoadPosition::new(leg.seg, frac.min(0.999_999));
            xys.push(pos.xy(self.net));
            points.push(MatchedPoint { pos, t });
        }
        (MatchedTrajectory { points }, xys)
    }
}

fn jittered_speed(rng: &mut impl Rng, freeflow: f64, jitter: f64, rush: f64) -> f64 {
    (freeflow * (jitter * gauss(rng)).exp() * rush).clamp(1.5, 35.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rntrajrec_roadnet::{CityConfig, NetworkDistance, SyntheticCity};

    fn city() -> SyntheticCity {
        SyntheticCity::generate(CityConfig::tiny())
    }

    #[test]
    fn sample_has_requested_lengths() {
        let city = city();
        let mut sim = Simulator::new(&city.net, SimConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let s = sim.sample(&mut rng, 8);
        assert_eq!(s.target.len(), 33);
        assert_eq!(s.raw.len(), 5); // 0,8,16,24,32
        assert!((s.raw.avg_interval_s() - 8.0 * 12.0).abs() < 1e-9);
    }

    #[test]
    fn ground_truth_timestamps_are_regular() {
        let city = city();
        let mut sim = Simulator::new(&city.net, SimConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let s = sim.sample(&mut rng, 16);
        for (k, p) in s.target.points.iter().enumerate() {
            assert_eq!(p.t, k as f64 * 12.0);
        }
        assert_eq!(s.raw.len(), 3); // 0,16,32
    }

    #[test]
    fn consecutive_ground_truth_points_are_road_connected() {
        // Consecutive ϵρ samples may skip short segments (a vehicle can
        // fully cross an 8 m ramp within one interval), but every hop in
        // the travel path must be joinable by a short forward route —
        // spatial consistency of the simulator itself.
        let city = city();
        let mut sim = Simulator::new(&city.net, SimConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let mut nd = NetworkDistance::new(&city.net);
        for _ in 0..5 {
            let s = sim.sample(&mut rng, 8);
            let path = s.target.travel_path();
            for w in path.windows(2) {
                let route = nd.route(w[0], w[1]);
                assert!(route.is_some(), "no route for hop {} -> {}", w[0], w[1]);
                // Intermediate segments were fully crossed within one ϵρ
                // interval, so their total length is speed-bounded.
                let route = route.unwrap();
                let gap: f64 = route[1..route.len() - 1]
                    .iter()
                    .map(|&s| city.net.segment(s).length())
                    .sum();
                assert!(
                    gap <= 35.0 * 12.0 + 1e-6,
                    "hop {} -> {} spans {gap} m",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn consecutive_points_respect_speed_limits() {
        let city = city();
        let mut sim = Simulator::new(&city.net, SimConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let s = sim.sample(&mut rng, 8);
        let mut nd = NetworkDistance::new(&city.net);
        for w in s.target.points.windows(2) {
            let d = nd
                .directed_m(&w[0].pos, &w[1].pos)
                .expect("route must exist");
            // 35 m/s is the hard clamp; 12 s interval -> at most 420 m.
            assert!(d <= 35.0 * 12.0 + 1e-6, "impossible jump of {d} m in 12 s");
        }
    }

    #[test]
    fn raw_noise_is_bounded_and_nonzero() {
        let city = city();
        let cfg = SimConfig {
            gps_noise_std_m: 10.0,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&city.net, cfg);
        let mut rng = StdRng::seed_from_u64(5);
        let s = sim.sample_dense(&mut rng, rntrajrec_roadnet::SegmentId(0));
        let mut total = 0.0;
        for (rp, mp) in s.raw.points.iter().zip(&s.target.points) {
            let err = rp.xy.dist(&mp.pos.xy(&city.net));
            assert!(err < 100.0, "unreasonable noise {err}");
            total += err;
        }
        let mean = total / s.raw.len() as f64;
        assert!(mean > 1.0, "noise looks disabled, mean error {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let city = city();
        let mut a = Simulator::new(&city.net, SimConfig::default());
        let mut b = Simulator::new(&city.net, SimConfig::default());
        let s1 = a.sample(&mut StdRng::seed_from_u64(42), 8);
        let s2 = b.sample(&mut StdRng::seed_from_u64(42), 8);
        assert_eq!(s1.target, s2.target);
        assert_eq!(s1.raw, s2.raw);
    }

    #[test]
    fn gauss_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gauss(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn sample_from_starts_on_requested_segment() {
        let city = city();
        let mut sim = Simulator::new(&city.net, SimConfig::default());
        let mut rng = StdRng::seed_from_u64(6);
        let origin = city.elevated[0];
        let s = sim.sample_from(&mut rng, origin, 8);
        assert_eq!(s.target.points[0].pos.seg, origin);
    }
}
