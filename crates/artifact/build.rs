use std::process::Command;

fn main() {
    // Bake the short git revision into packed artifacts so a serving
    // process can report exactly which tree produced the weights it is
    // holding. Outside a git checkout fall back to "unknown".
    let sha = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=RNTRAJREC_GIT_SHA={sha}");
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
