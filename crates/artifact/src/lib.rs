//! Versioned on-disk model artifacts, one per city shard.
//!
//! An artifact is everything a serving process needs to stand up (or hot
//! swap) one city's model without retracing the build: the model weights
//! as raw little-endian `f32` tensors in `ParamStore` order, the
//! precomputed GridGNN road-embedding cache (`X_road`), and the int8
//! quantized segment head (exact integers, so a loaded artifact serves
//! bit-identically to the process that packed it). A fixed binary header
//! carries magic/format-version/city-id/bbox/git-sha, an embedded
//! human-readable JSON manifest (the only place the vendored serde is
//! used) records how to rebuild the model skeleton (spec, dim, seed, grid
//! cell size, synthetic-city parameters), and a CRC-32 over everything
//! after the checksum field rejects corrupt or truncated files before any
//! model state is touched.
//!
//! Loading rebuilds the deterministic skeleton with
//! [`rntrajrec::EndToEnd::build`] and overwrites every parameter from the
//! payload, which [`Artifact::instantiate`] validates name-by-name and
//! shape-by-shape — the round trip is lossless, pinned by the
//! `pack → load → serve` bit-identity tests in `rntrajrec-serve`.

#![deny(missing_docs)]

use rntrajrec::{EndToEnd, MethodSpec};
use rntrajrec_geo::GridSpec;
use rntrajrec_nn::quant::QuantizedLinear;
use rntrajrec_nn::Tensor;
use rntrajrec_roadnet::{CityConfig, SyntheticCity};
use serde::{Serialize, Value};

/// First four bytes of every artifact file.
pub const MAGIC: [u8; 4] = *b"RNTA";
/// On-disk format revision this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;
/// The git revision this library was built from (baked by `build.rs`).
pub const GIT_SHA: &str = env!("RNTRAJREC_GIT_SHA");

/// Hard cap on any single length field, against hostile headers asking
/// the reader to allocate terabytes (far above any real model here).
const MAX_SECTION_BYTES: usize = 1 << 31;

/// Why an artifact could not be read, written, or instantiated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// Filesystem failure (path, message).
    Io(String),
    /// The bytes are not a well-formed artifact: bad magic, unsupported
    /// format version, failed checksum, truncation, or manifest errors.
    Corrupt(String),
    /// The file is well-formed but does not match the model skeleton its
    /// manifest describes (wrong tensor names/shapes, bbox drift).
    Mismatch(String),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(m) => write!(f, "artifact io error: {m}"),
            ArtifactError::Corrupt(m) => write!(f, "corrupt artifact: {m}"),
            ArtifactError::Mismatch(m) => write!(f, "artifact/model mismatch: {m}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

fn corrupt(m: impl Into<String>) -> ArtifactError {
    ArtifactError::Corrupt(m.into())
}

fn mismatch(m: impl Into<String>) -> ArtifactError {
    ArtifactError::Mismatch(m.into())
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the classic zlib/PNG
/// polynomial, computed with a lazily built 256-entry table.
pub fn crc32(bytes: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// The synthetic-city generation parameters, captured in the manifest so
/// a loader can rebuild the exact road network the weights were trained
/// against (stand-in for a real deployment's map-snapshot reference).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CityParams {
    /// See [`CityConfig::blocks_x`].
    pub blocks_x: usize,
    /// See [`CityConfig::blocks_y`].
    pub blocks_y: usize,
    /// See [`CityConfig::block_min_m`].
    pub block_min_m: f64,
    /// See [`CityConfig::block_max_m`].
    pub block_max_m: f64,
    /// See [`CityConfig::one_way_fraction`].
    pub one_way_fraction: f64,
    /// See [`CityConfig::arterial_every`].
    pub arterial_every: usize,
    /// See [`CityConfig::with_elevated`].
    pub with_elevated: bool,
    /// See [`CityConfig::elevated_offset_m`].
    pub elevated_offset_m: f64,
    /// See [`CityConfig::ramp_every`].
    pub ramp_every: usize,
    /// See [`CityConfig::diagonal`].
    pub diagonal: bool,
    /// See [`CityConfig::seed`].
    pub seed: u64,
    /// See [`CityConfig::origin_x`].
    pub origin_x: f64,
    /// See [`CityConfig::origin_y`].
    pub origin_y: f64,
}

impl CityParams {
    /// Capture a [`CityConfig`].
    pub fn from_config(c: &CityConfig) -> Self {
        Self {
            blocks_x: c.blocks_x,
            blocks_y: c.blocks_y,
            block_min_m: c.block_min_m,
            block_max_m: c.block_max_m,
            one_way_fraction: c.one_way_fraction,
            arterial_every: c.arterial_every,
            with_elevated: c.with_elevated,
            elevated_offset_m: c.elevated_offset_m,
            ramp_every: c.ramp_every,
            diagonal: c.diagonal,
            seed: c.seed,
            origin_x: c.origin_x,
            origin_y: c.origin_y,
        }
    }

    /// The [`CityConfig`] these parameters describe.
    pub fn to_config(&self) -> CityConfig {
        CityConfig {
            blocks_x: self.blocks_x,
            blocks_y: self.blocks_y,
            block_min_m: self.block_min_m,
            block_max_m: self.block_max_m,
            one_way_fraction: self.one_way_fraction,
            arterial_every: self.arterial_every,
            with_elevated: self.with_elevated,
            elevated_offset_m: self.elevated_offset_m,
            ramp_every: self.ramp_every,
            diagonal: self.diagonal,
            seed: self.seed,
            origin_x: self.origin_x,
            origin_y: self.origin_y,
        }
    }

    fn from_value(v: &Value) -> Result<Self, ArtifactError> {
        let f = |k: &str| {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| corrupt(format!("manifest city_config.{k} missing or not a number")))
        };
        let u = |k: &str| {
            v.get(k).and_then(Value::as_u64).ok_or_else(|| {
                corrupt(format!(
                    "manifest city_config.{k} missing or not an integer"
                ))
            })
        };
        let b = |k: &str| {
            v.get(k)
                .and_then(Value::as_bool)
                .ok_or_else(|| corrupt(format!("manifest city_config.{k} missing or not a bool")))
        };
        Ok(Self {
            blocks_x: u("blocks_x")? as usize,
            blocks_y: u("blocks_y")? as usize,
            block_min_m: f("block_min_m")?,
            block_max_m: f("block_max_m")?,
            one_way_fraction: f("one_way_fraction")?,
            arterial_every: u("arterial_every")? as usize,
            with_elevated: b("with_elevated")?,
            elevated_offset_m: f("elevated_offset_m")?,
            ramp_every: u("ramp_every")? as usize,
            diagonal: b("diagonal")?,
            seed: u("seed")?,
            origin_x: f("origin_x")?,
            origin_y: f("origin_y")?,
        })
    }
}

/// Everything in the artifact besides the tensors themselves: the binary
/// header fields plus the manifest's skeleton-rebuild parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactMeta {
    /// City identifier — the shard key (`"shanghai"`, `"porto"`, …).
    pub city: String,
    /// Operator-chosen model version string; flips the
    /// `rntrajrec_artifact_info` gauge on reload.
    pub model_version: String,
    /// Git revision of the tree that packed the artifact.
    pub git_sha: String,
    /// Planar bounding box of the city's road network
    /// (`[min_x, min_y, max_x, max_y]` metres) — the router's shard key.
    pub bbox: [f64; 4],
    /// Model spec identifier (only `"rntrajrec"` serves today).
    pub spec: String,
    /// Model hidden size.
    pub dim: usize,
    /// Weight-initialisation seed of the skeleton.
    pub seed: u64,
    /// Grid cell size (m) the model was built against.
    pub cell_m: f64,
    /// Synthetic-city generation parameters.
    pub city_params: CityParams,
}

impl ArtifactMeta {
    fn spec_of(&self) -> Result<MethodSpec, ArtifactError> {
        match self.spec.as_str() {
            "rntrajrec" => Ok(MethodSpec::RnTrajRec),
            other => Err(mismatch(format!(
                "unsupported model spec '{other}' (this build serves 'rntrajrec')"
            ))),
        }
    }
}

/// One named weight tensor (raw row-major `f32`).
#[derive(Debug, Clone, PartialEq)]
pub struct NamedTensor {
    /// `ParamStore` parameter name (e.g. `dec.w_id`).
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major values, `rows × cols`.
    pub data: Vec<f32>,
}

impl NamedTensor {
    /// Capture a tensor under `name`.
    pub fn of(name: impl Into<String>, t: &Tensor) -> Self {
        Self {
            name: name.into(),
            rows: t.rows,
            cols: t.cols,
            data: t.data.clone(),
        }
    }

    /// The tensor value.
    pub fn to_tensor(&self) -> Tensor {
        let mut t = Tensor::zeros(self.rows, self.cols);
        t.data.copy_from_slice(&self.data);
        t
    }
}

/// The serialized int8 segment head (exact integers + per-channel scales).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantHead {
    /// Input features (hidden dim `d`).
    pub k: usize,
    /// Output channels (`|V|`).
    pub c: usize,
    /// Channel-major `[C, K]` int8 weights.
    pub qt: Vec<i8>,
    /// Per-channel dequantization scales.
    pub scales: Vec<f32>,
}

impl QuantHead {
    /// Capture a quantized head.
    pub fn of(q: &QuantizedLinear) -> Self {
        let (k, c, qt, scales) = q.to_parts();
        Self {
            k,
            c,
            qt: qt.to_vec(),
            scales: scales.to_vec(),
        }
    }

    /// Rebuild the head (bit-exact).
    pub fn to_quantized(&self) -> Result<QuantizedLinear, ArtifactError> {
        QuantizedLinear::from_parts(self.k, self.c, self.qt.clone(), self.scales.clone())
            .map_err(mismatch)
    }
}

/// A fully materialised artifact: metadata + weights + caches.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Header + manifest metadata.
    pub meta: ArtifactMeta,
    /// Every model parameter, in `ParamStore` registration order.
    pub params: Vec<NamedTensor>,
    /// The precomputed `X_road` cache (`[|V|, d]`), when the encoder has
    /// an input-independent representation.
    pub x_road: Option<NamedTensor>,
    /// The int8 segment head.
    pub quant: Option<QuantHead>,
}

/// A model stood back up from an artifact, ready to wrap for serving.
pub struct LoadedModel {
    /// The regenerated city (road network + special structures).
    pub city: SyntheticCity,
    /// The grid the model was built against.
    pub grid: GridSpec,
    /// Skeleton rebuilt deterministically, every parameter overwritten
    /// with the artifact's exact values.
    pub model: EndToEnd,
    /// The packed road-embedding cache, shape-checked.
    pub x_road: Option<Tensor>,
    /// The packed int8 head, shape-checked.
    pub quant: Option<QuantizedLinear>,
}

#[derive(Serialize)]
struct ManifestTensor {
    name: String,
    rows: usize,
    cols: usize,
}

#[derive(Serialize)]
struct Manifest {
    format_version: u32,
    city: String,
    model_version: String,
    git_sha: String,
    bbox: [f64; 4],
    spec: String,
    dim: usize,
    seed: u64,
    cell_m: f64,
    city_config: CityParams,
    num_params: usize,
    num_scalars: usize,
    has_road_cache: bool,
    has_int8_head: bool,
    tensors: Vec<ManifestTensor>,
}

impl Artifact {
    /// Capture a built model (plus its serving caches) for `city`.
    ///
    /// `bbox` must be the road network's bounding box — the loader
    /// revalidates it against the regenerated city, so a manifest that
    /// drifts from the generator is rejected instead of silently serving
    /// the wrong geometry.
    #[allow(clippy::too_many_arguments)]
    pub fn pack(
        city: &str,
        model_version: &str,
        city_params: CityParams,
        cell_m: f64,
        dim: usize,
        seed: u64,
        bbox: [f64; 4],
        model: &EndToEnd,
        x_road: Option<&Tensor>,
        quant: Option<&QuantizedLinear>,
    ) -> Self {
        let params = model
            .store
            .ids()
            .map(|id| NamedTensor::of(model.store.name(id), model.store.value(id)))
            .collect();
        Self {
            meta: ArtifactMeta {
                city: city.to_string(),
                model_version: model_version.to_string(),
                git_sha: GIT_SHA.to_string(),
                bbox,
                spec: "rntrajrec".to_string(),
                dim,
                seed,
                cell_m,
                city_params,
            },
            params,
            x_road: x_road.map(|t| NamedTensor::of("cache.x_road", t)),
            quant: quant.map(QuantHead::of),
        }
    }

    /// The embedded human-readable manifest as pretty-printed JSON.
    pub fn manifest_json(&self) -> String {
        let m = Manifest {
            format_version: FORMAT_VERSION,
            city: self.meta.city.clone(),
            model_version: self.meta.model_version.clone(),
            git_sha: self.meta.git_sha.clone(),
            bbox: self.meta.bbox,
            spec: self.meta.spec.clone(),
            dim: self.meta.dim,
            seed: self.meta.seed,
            cell_m: self.meta.cell_m,
            city_config: self.meta.city_params.clone(),
            num_params: self.params.len(),
            num_scalars: self.params.iter().map(|t| t.data.len()).sum(),
            has_road_cache: self.x_road.is_some(),
            has_int8_head: self.quant.is_some(),
            tensors: self
                .params
                .iter()
                .map(|t| ManifestTensor {
                    name: t.name.clone(),
                    rows: t.rows,
                    cols: t.cols,
                })
                .collect(),
        };
        serde_json::to_string_pretty(&m).expect("manifest serializes")
    }

    /// Serialize to the on-disk byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        // Everything after the 12-byte [magic | version | crc] prefix is
        // covered by the checksum.
        let mut body = Vec::new();
        put_str(&mut body, &self.meta.city);
        put_str(&mut body, &self.meta.model_version);
        put_str(&mut body, &self.meta.git_sha);
        for v in self.meta.bbox {
            body.extend_from_slice(&v.to_le_bytes());
        }
        put_str(&mut body, &self.manifest_json());
        body.extend_from_slice(&(self.params.len() as u32).to_le_bytes());
        for t in &self.params {
            put_tensor(&mut body, t);
        }
        match &self.x_road {
            Some(t) => {
                body.push(1);
                put_tensor(&mut body, t);
            }
            None => body.push(0),
        }
        match &self.quant {
            Some(q) => {
                body.push(1);
                body.extend_from_slice(&(q.k as u32).to_le_bytes());
                body.extend_from_slice(&(q.c as u32).to_le_bytes());
                body.extend_from_slice(&q.qt.iter().map(|&b| b as u8).collect::<Vec<u8>>());
                for s in &q.scales {
                    body.extend_from_slice(&s.to_le_bytes());
                }
            }
            None => body.push(0),
        }
        let mut out = Vec::with_capacity(12 + body.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Write to `path` (atomically via a sibling temp file, so a reload
    /// rescan never observes a half-written artifact).
    pub fn write_to(&self, path: &std::path::Path) -> Result<(), ArtifactError> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)
            .map_err(|e| ArtifactError::Io(format!("{}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| ArtifactError::Io(format!("{}: {e}", path.display())))
    }

    /// Parse the on-disk byte layout, validating magic, format version,
    /// and the CRC before touching any section.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        if bytes.len() < 12 {
            return Err(corrupt(format!(
                "{} bytes is too short for a header",
                bytes.len()
            )));
        }
        if bytes[0..4] != MAGIC {
            return Err(corrupt("bad magic (not an artifact file)"));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(corrupt(format!(
                "format version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let want_crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let body = &bytes[12..];
        let got_crc = crc32(body);
        if got_crc != want_crc {
            return Err(corrupt(format!(
                "checksum mismatch (header {want_crc:08x}, body {got_crc:08x}) — truncated or corrupt"
            )));
        }
        let mut cur = Cursor { buf: body, pos: 0 };
        let city = cur.take_str("city")?;
        let model_version = cur.take_str("model_version")?;
        let git_sha = cur.take_str("git_sha")?;
        let mut bbox = [0.0f64; 4];
        for b in &mut bbox {
            *b = cur.take_f64("bbox")?;
        }
        let manifest = cur.take_str("manifest")?;
        let mv: Value = serde_json::from_str(&manifest)
            .map_err(|e| corrupt(format!("manifest is not valid JSON: {e}")))?;
        let m_str = |k: &str| {
            mv.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| corrupt(format!("manifest field '{k}' missing or not a string")))
        };
        let spec = m_str("spec")?;
        if m_str("city")? != city {
            return Err(corrupt("manifest city disagrees with the binary header"));
        }
        let dim = mv
            .get("dim")
            .and_then(Value::as_u64)
            .ok_or_else(|| corrupt("manifest field 'dim' missing or not an integer"))?
            as usize;
        let seed = mv
            .get("seed")
            .and_then(Value::as_u64)
            .ok_or_else(|| corrupt("manifest field 'seed' missing or not an integer"))?;
        let cell_m = mv
            .get("cell_m")
            .and_then(Value::as_f64)
            .ok_or_else(|| corrupt("manifest field 'cell_m' missing or not a number"))?;
        let city_params = CityParams::from_value(
            mv.get("city_config")
                .ok_or_else(|| corrupt("manifest field 'city_config' missing"))?,
        )?;
        let n = cur.take_u32("tensor count")? as usize;
        if n > 1 << 20 {
            return Err(corrupt(format!("implausible tensor count {n}")));
        }
        let mut params = Vec::with_capacity(n);
        for i in 0..n {
            params.push(cur.take_tensor(&format!("tensor {i}"))?);
        }
        let x_road = match cur.take_u8("road-cache flag")? {
            0 => None,
            1 => Some(cur.take_tensor("road cache")?),
            f => return Err(corrupt(format!("bad road-cache flag {f}"))),
        };
        let quant = match cur.take_u8("int8-head flag")? {
            0 => None,
            1 => {
                let k = cur.take_u32("int8 head k")? as usize;
                let c = cur.take_u32("int8 head c")? as usize;
                let nb = k
                    .checked_mul(c)
                    .filter(|&nb| nb <= MAX_SECTION_BYTES)
                    .ok_or_else(|| corrupt("int8 head dimensions overflow"))?;
                let raw = cur.take_bytes(nb, "int8 weights")?;
                let qt: Vec<i8> = raw.iter().map(|&b| b as i8).collect();
                let mut scales = Vec::with_capacity(c);
                for _ in 0..c {
                    scales.push(cur.take_f32("int8 scale")?);
                }
                Some(QuantHead { k, c, qt, scales })
            }
            f => return Err(corrupt(format!("bad int8-head flag {f}"))),
        };
        if cur.pos != cur.buf.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after the last section",
                cur.buf.len() - cur.pos
            )));
        }
        Ok(Self {
            meta: ArtifactMeta {
                city,
                model_version,
                git_sha,
                bbox,
                spec,
                dim,
                seed,
                cell_m,
                city_params,
            },
            params,
            x_road,
            quant,
        })
    }

    /// Read and parse `path`.
    pub fn read_from(path: &std::path::Path) -> Result<Self, ArtifactError> {
        let bytes = std::fs::read(path)
            .map_err(|e| ArtifactError::Io(format!("{}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }

    /// Stand the model back up: regenerate the city, rebuild the
    /// deterministic skeleton, and overwrite every parameter with the
    /// packed values (validated name-by-name and shape-by-shape, so a
    /// well-formed file packed against different code is rejected instead
    /// of serving garbage).
    pub fn instantiate(&self) -> Result<LoadedModel, ArtifactError> {
        let spec = self.meta.spec_of()?;
        let city = SyntheticCity::generate(self.meta.city_params.to_config());
        let net_bbox = city.net.bbox();
        let got = [
            net_bbox.min_x,
            net_bbox.min_y,
            net_bbox.max_x,
            net_bbox.max_y,
        ];
        if got != self.meta.bbox {
            return Err(mismatch(format!(
                "regenerated city bbox {got:?} != packed bbox {:?}",
                self.meta.bbox
            )));
        }
        let grid = city.net.grid(self.meta.cell_m);
        let mut model = EndToEnd::build(&spec, &city.net, &grid, self.meta.dim, self.meta.seed);
        let ids: Vec<_> = model.store.ids().collect();
        if ids.len() != self.params.len() {
            return Err(mismatch(format!(
                "artifact has {} tensors, skeleton has {} parameters",
                self.params.len(),
                ids.len()
            )));
        }
        for (id, packed) in ids.into_iter().zip(&self.params) {
            if model.store.name(id) != packed.name {
                return Err(mismatch(format!(
                    "parameter order diverged: skeleton '{}' vs artifact '{}'",
                    model.store.name(id),
                    packed.name
                )));
            }
            let value = model.store.value_mut(id);
            if (value.rows, value.cols) != (packed.rows, packed.cols) {
                return Err(mismatch(format!(
                    "parameter '{}' is [{}, {}] in the skeleton but [{}, {}] in the artifact",
                    packed.name, value.rows, value.cols, packed.rows, packed.cols
                )));
            }
            value.data.copy_from_slice(&packed.data);
        }
        let num_segments = city.net.num_segments();
        let x_road = match &self.x_road {
            Some(t) => {
                if (t.rows, t.cols) != (num_segments, self.meta.dim) {
                    return Err(mismatch(format!(
                        "road cache is [{}, {}], expected [{num_segments}, {}]",
                        t.rows, t.cols, self.meta.dim
                    )));
                }
                Some(t.to_tensor())
            }
            None => None,
        };
        let quant = match &self.quant {
            Some(q) => {
                if (q.k, q.c) != (self.meta.dim, num_segments) {
                    return Err(mismatch(format!(
                        "int8 head is [{}, {}], expected [{num_segments}, {}]",
                        q.c, q.k, self.meta.dim
                    )));
                }
                Some(q.to_quantized()?)
            }
            None => None,
        };
        Ok(LoadedModel {
            city,
            grid,
            model,
            x_road,
            quant,
        })
    }
}

/// Build + pack a fresh city model in one call (the `pack_city` bin and
/// the tests share this path; a trained deployment would pack its trained
/// `EndToEnd` instead).
pub fn pack_fresh(
    city: &str,
    model_version: &str,
    config: &CityConfig,
    cell_m: f64,
    dim: usize,
    seed: u64,
) -> Artifact {
    let generated = SyntheticCity::generate(config.clone());
    let grid = generated.net.grid(cell_m);
    let model = EndToEnd::build(&MethodSpec::RnTrajRec, &generated.net, &grid, dim, seed);
    let x_road = model.precompute_road();
    let quant = model.decoder.quantized_segment_head(&model.store);
    let b = generated.net.bbox();
    Artifact::pack(
        city,
        model_version,
        CityParams::from_config(config),
        cell_m,
        dim,
        seed,
        [b.min_x, b.min_y, b.max_x, b.max_y],
        &model,
        x_road.as_ref(),
        Some(&quant),
    )
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_tensor(out: &mut Vec<u8>, t: &NamedTensor) {
    put_str(out, &t.name);
    out.extend_from_slice(&(t.rows as u32).to_le_bytes());
    out.extend_from_slice(&(t.cols as u32).to_le_bytes());
    for v in &t.data {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take_bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], ArtifactError> {
        if n > MAX_SECTION_BYTES || self.pos + n > self.buf.len() {
            return Err(corrupt(format!(
                "truncated while reading {what} ({n} bytes at offset {})",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_u8(&mut self, what: &str) -> Result<u8, ArtifactError> {
        Ok(self.take_bytes(1, what)?[0])
    }

    fn take_u32(&mut self, what: &str) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(
            self.take_bytes(4, what)?.try_into().unwrap(),
        ))
    }

    fn take_f32(&mut self, what: &str) -> Result<f32, ArtifactError> {
        Ok(f32::from_le_bytes(
            self.take_bytes(4, what)?.try_into().unwrap(),
        ))
    }

    fn take_f64(&mut self, what: &str) -> Result<f64, ArtifactError> {
        Ok(f64::from_le_bytes(
            self.take_bytes(8, what)?.try_into().unwrap(),
        ))
    }

    fn take_str(&mut self, what: &str) -> Result<String, ArtifactError> {
        let n = self.take_u32(what)? as usize;
        let bytes = self.take_bytes(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt(format!("{what} is not valid UTF-8")))
    }

    fn take_tensor(&mut self, what: &str) -> Result<NamedTensor, ArtifactError> {
        let name = self.take_str(what)?;
        let rows = self.take_u32(what)? as usize;
        let cols = self.take_u32(what)? as usize;
        let n = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(4))
            .filter(|&nb| nb <= MAX_SECTION_BYTES)
            .ok_or_else(|| corrupt(format!("{what} ('{name}') has implausible shape")))?;
        let raw = self.take_bytes(n, what)?;
        let data = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(NamedTensor {
            name,
            rows,
            cols,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_artifact() -> Artifact {
        pack_fresh("testville", "v1", &CityConfig::tiny(), 50.0, 8, 7)
    }

    #[test]
    fn byte_round_trip_is_lossless() {
        let a = tiny_artifact();
        let bytes = a.to_bytes();
        let back = Artifact::from_bytes(&bytes).expect("parses");
        assert_eq!(back, a);
        // f32 payload must survive bitwise, not just approximately.
        for (x, y) in a.params[0].data.iter().zip(&back.params[0].data) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn instantiate_reproduces_exact_parameters() {
        let a = tiny_artifact();
        let loaded = a.instantiate().expect("instantiates");
        // Every parameter matches the packed values bitwise.
        for (id, packed) in loaded.model.store.ids().zip(&a.params) {
            let v = loaded.model.store.value(id);
            assert_eq!(loaded.model.store.name(id), packed.name);
            for (x, y) in v.data.iter().zip(&packed.data) {
                assert_eq!(x.to_bits(), y.to_bits(), "{}", packed.name);
            }
        }
        let road = loaded.x_road.expect("rntrajrec has a road cache");
        assert_eq!(road.rows, loaded.city.net.num_segments());
        assert_eq!(road.cols, 8);
        // The packed cache equals a fresh precompute over the restored
        // weights — the cache is genuinely redundant state, carried only
        // to skip the precompute at load.
        let fresh = loaded.model.precompute_road().expect("precompute");
        assert_eq!(road.data, fresh.data);
        let quant = loaded.quant.expect("int8 head packed");
        let (_, _, qt, _) = quant.to_parts();
        let requantized = loaded
            .model
            .decoder
            .quantized_segment_head(&loaded.model.store);
        let (_, _, qt2, _) = requantized.to_parts();
        assert_eq!(qt, qt2, "packed int8 integers match re-quantization");
    }

    #[test]
    fn corrupt_and_truncated_files_are_rejected() {
        let a = tiny_artifact();
        let bytes = a.to_bytes();

        // Truncation at any prefix is refused.
        for cut in [5, 11, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    Artifact::from_bytes(&bytes[..cut]),
                    Err(ArtifactError::Corrupt(_))
                ),
                "truncation at {cut} must be rejected"
            );
        }

        // A flipped payload byte fails the checksum.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            Artifact::from_bytes(&flipped),
            Err(ArtifactError::Corrupt(_))
        ));

        // Wrong magic and wrong version are refused before anything else.
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            Artifact::from_bytes(&wrong_magic),
            Err(ArtifactError::Corrupt(_))
        ));
        let mut wrong_version = bytes;
        wrong_version[4] = 0xFF;
        assert!(matches!(
            Artifact::from_bytes(&wrong_version),
            Err(ArtifactError::Corrupt(_))
        ));
    }

    #[test]
    fn mismatched_skeleton_is_rejected() {
        let mut a = tiny_artifact();
        // Rename a parameter: well-formed bytes, wrong model.
        a.params[0].name = "not.a.param".to_string();
        let back = Artifact::from_bytes(&a.to_bytes()).expect("still well-formed");
        assert!(matches!(
            back.instantiate(),
            Err(ArtifactError::Mismatch(_))
        ));

        // Drift the bbox: the regenerated city no longer matches.
        let mut b = tiny_artifact();
        b.meta.bbox[2] += 1.0;
        let back = Artifact::from_bytes(&b.to_bytes()).expect("well-formed");
        assert!(matches!(
            back.instantiate(),
            Err(ArtifactError::Mismatch(_))
        ));
    }

    #[test]
    fn manifest_is_human_readable_json() {
        let a = tiny_artifact();
        let m: Value = serde_json::from_str(&a.manifest_json()).expect("valid JSON");
        assert_eq!(m.get("city").and_then(Value::as_str), Some("testville"));
        assert_eq!(m.get("model_version").and_then(Value::as_str), Some("v1"));
        assert_eq!(m.get("spec").and_then(Value::as_str), Some("rntrajrec"));
        assert!(m.get("num_scalars").and_then(Value::as_u64).unwrap() > 0);
        assert_eq!(
            m.get("tensors").and_then(Value::as_array).unwrap().len(),
            a.params.len()
        );
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
