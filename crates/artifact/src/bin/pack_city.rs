//! Pack one city's model into a versioned artifact file.
//!
//! ```text
//! pack_city --city shanghai --out /tmp/shanghai.rnta \
//!           --blocks 4 --dim 8 --seed 7 --origin-x 0 --origin-y 0 \
//!           --model-version v1
//! ```
//!
//! Also writes `<out>.manifest.json` next to the artifact so operators
//! can inspect what was packed without a binary reader.

use rntrajrec_artifact::pack_fresh;
use rntrajrec_roadnet::CityConfig;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    city: String,
    out: PathBuf,
    model_version: String,
    blocks: usize,
    dim: usize,
    seed: u64,
    city_seed: u64,
    cell_m: f64,
    origin_x: f64,
    origin_y: f64,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut args = Args {
            city: String::new(),
            out: PathBuf::new(),
            model_version: "v1".to_string(),
            blocks: 4,
            dim: 8,
            seed: 7,
            city_seed: 42,
            cell_m: 50.0,
            origin_x: 0.0,
            origin_y: 0.0,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            if flag == "--help" || flag == "-h" {
                return Err(String::new());
            }
            let mut val = || it.next().ok_or_else(|| format!("{flag} expects a value"));
            match flag.as_str() {
                "--city" => args.city = val()?,
                "--out" => args.out = PathBuf::from(val()?),
                "--model-version" => args.model_version = val()?,
                "--blocks" => args.blocks = parse(&flag, &val()?)?,
                "--dim" => args.dim = parse(&flag, &val()?)?,
                "--seed" => args.seed = parse(&flag, &val()?)?,
                "--city-seed" => args.city_seed = parse(&flag, &val()?)?,
                "--cell-m" => args.cell_m = parse(&flag, &val()?)?,
                "--origin-x" => args.origin_x = parse(&flag, &val()?)?,
                "--origin-y" => args.origin_y = parse(&flag, &val()?)?,
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if args.city.is_empty() {
            return Err("--city is required".to_string());
        }
        if args.out.as_os_str().is_empty() {
            return Err("--out is required".to_string());
        }
        Ok(args)
    }
}

fn parse<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag}: cannot parse '{raw}'"))
}

fn usage() {
    eprintln!(
        "usage: pack_city --city NAME --out PATH [--model-version v1] \
         [--blocks 4] [--dim 8] [--seed 7] [--city-seed 42] [--cell-m 50] \
         [--origin-x 0] [--origin-y 0]"
    );
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("pack_city: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };
    let config = CityConfig {
        blocks_x: args.blocks,
        blocks_y: args.blocks,
        seed: args.city_seed,
        origin_x: args.origin_x,
        origin_y: args.origin_y,
        ..CityConfig::tiny()
    };
    let artifact = pack_fresh(
        &args.city,
        &args.model_version,
        &config,
        args.cell_m,
        args.dim,
        args.seed,
    );
    if let Err(e) = artifact.write_to(&args.out) {
        eprintln!("pack_city: {e}");
        return ExitCode::FAILURE;
    }
    let manifest_path = {
        let mut s = args.out.as_os_str().to_os_string();
        s.push(".manifest.json");
        PathBuf::from(s)
    };
    if let Err(e) = std::fs::write(&manifest_path, artifact.manifest_json()) {
        eprintln!("pack_city: {}: {e}", manifest_path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "packed city={} version={} bbox=[{:.1}, {:.1}, {:.1}, {:.1}] params={} -> {}",
        artifact.meta.city,
        artifact.meta.model_version,
        artifact.meta.bbox[0],
        artifact.meta.bbox[1],
        artifact.meta.bbox[2],
        artifact.meta.bbox[3],
        artifact.params.len(),
        args.out.display()
    );
    ExitCode::SUCCESS
}
