//! Property suite for the fused batched decoder **and** encoder.
//!
//! The contract: [`Decoder::recover_batch_infer`] and
//! [`RnTrajRecEncoder::infer_batch`] over an arbitrary micro-batch —
//! ragged lengths, repeated members, any batch size, any intra-op thread
//! count — are **bit-identical** to running [`Decoder::infer_run`] /
//! [`RnTrajRecEncoder::infer_sample`] on each member alone. The batched
//! paths stack members' rows into one matrix per projection while every
//! member-scoped reduction (attention rows, graph readout, GraphNorm
//! statistics) keeps each member's own accumulation order; that is exactly
//! what this suite pins down — under every available kernel backend
//! (scalar, and AVX2+FMA when the host supports it), since each backend
//! must be deterministic within itself for any batch composition. The
//! suite also pins the decoder's segment-head variants: sparse recovery
//! ≡ dense recovery, and the int8 head stays mask-valid and
//! thread-invariant.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rntrajrec_models::{
    BatchMember, Decoder, DecoderConfig, FeatureExtractor, RnTrajRecConfig, RnTrajRecEncoder,
    SampleInput, SegmentHead,
};
use rntrajrec_nn::kernels::backend::{self, Backend};
use rntrajrec_nn::{pool, ParamStore, Tensor};
use rntrajrec_roadnet::{CityConfig, RTree, SyntheticCity};
use rntrajrec_synth::{RawPoint, RawTrajectory, SimConfig, Simulator, TimeContext};

/// Every backend the host can execute (scalar always; AVX2 when
/// supported, with a visible notice when the sweep is narrowed).
fn backends() -> Vec<Backend> {
    let mut v = vec![Backend::Scalar];
    if backend::is_supported(Backend::Avx2Fma) {
        v.push(Backend::Avx2Fma);
    } else {
        eprintln!("NOTICE: host lacks AVX2+FMA; backend sweep covers scalar only");
    }
    v
}

struct Fixture {
    store: ParamStore,
    decoder: Decoder,
    /// `(per_point, traj, sample)` pool entries with ragged input and
    /// target lengths.
    members: Vec<(Tensor, Tensor, SampleInput)>,
}

impl Fixture {
    fn member(&self, p: usize) -> BatchMember<'_> {
        let (per_point, traj, sample) = &self.members[p];
        BatchMember {
            per_point,
            traj,
            sample,
        }
    }

    fn sequential(&self, p: usize) -> Vec<(usize, f32)> {
        let (per_point, traj, sample) = &self.members[p];
        self.decoder.infer_run(&self.store, per_point, traj, sample)
    }
}

const DIM: usize = 16;
const POOL: usize = 6;

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let city = SyntheticCity::generate(CityConfig::tiny());
        let rtree = RTree::build(&city.net);
        let grid = city.net.grid(50.0);
        let fx = FeatureExtractor::new(&city.net, &rtree, grid);
        let mut rng = StdRng::seed_from_u64(41);
        // Ragged pool: distinct target lengths (3..12) and input lengths,
        // with one pair (9, 9) sharing a target length for the
        // equal-length grouping case.
        let shapes: [(usize, usize); POOL] = [(3, 4), (5, 8), (7, 6), (9, 10), (9, 8), (12, 5)];
        let members = shapes
            .iter()
            .map(|&(target_len, raw_len)| {
                let mut sim = Simulator::new(
                    &city.net,
                    SimConfig {
                        target_len,
                        ..Default::default()
                    },
                );
                let input = fx.extract(&sim.sample(&mut rng, raw_len));
                let per_point = Tensor::uniform(input.input_len(), DIM, 0.5, &mut rng);
                let traj = Tensor::uniform(1, DIM, 0.5, &mut rng);
                (per_point, traj, input)
            })
            .collect();
        let mut store = ParamStore::new();
        let decoder = Decoder::new(
            &mut store,
            &mut rng,
            DecoderConfig {
                dim: DIM,
                num_segments: city.net.num_segments(),
                use_mask: true,
            },
        );
        Fixture {
            store,
            decoder,
            members,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary ragged batches (any composition, with repeats) decoded in
    /// one fused pass equal the per-member sequential decode bit-for-bit,
    /// at 1 and 4 intra-op kernel threads, under every available backend
    /// (the AVX2 kernels accumulate without zero-skip precisely so that
    /// batch composition cannot change any member's bits).
    #[test]
    fn fused_batch_equals_sequential(
        batch_size in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let picks: Vec<usize> = (0..batch_size)
            .map(|_| rand::Rng::gen_range(&mut rng, 0..POOL))
            .collect();
        let fix = fixture();
        for bk in backends() {
            backend::with_backend(bk, || {
                pool::set_num_threads(1);
                let sequential: Vec<Vec<(usize, f32)>> =
                    picks.iter().map(|&p| fix.sequential(p)).collect();
                for threads in [1usize, 4] {
                    pool::set_num_threads(threads);
                    let batch: Vec<BatchMember> = picks.iter().map(|&p| fix.member(p)).collect();
                    let batched = fix.decoder.recover_batch_infer(&fix.store, &batch);
                    pool::set_num_threads(1);
                    assert!(
                        batched == sequential,
                        "diverged at {threads} threads under {}",
                        bk.name()
                    );
                }
            });
        }
    }

    /// Mid-decode cancellation (the deadline-propagation path): cancelling
    /// an arbitrary subset of members at arbitrary steps retires them
    /// through the state-compaction path, and every survivor stays
    /// **bit-identical** to the sequential (uncancelled) decode — and each
    /// cancelled member's truncated output is bit-identical to the
    /// uncancelled run's prefix. Swept over backends and 1/4 intra-op
    /// threads like the main parity property.
    #[test]
    fn cancelled_members_leave_survivors_bit_identical(
        batch_size in 2usize..9,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let picks: Vec<usize> = (0..batch_size)
            .map(|_| rand::Rng::gen_range(&mut rng, 0..POOL))
            .collect();
        // Per member: None = never cancel; Some(j) = cancel before step j
        // (j = 0 cancels before any step runs).
        let cuts: Vec<Option<usize>> = picks
            .iter()
            .map(|_| {
                if rand::Rng::gen_bool(&mut rng, 0.5) {
                    Some(rand::Rng::gen_range(&mut rng, 0..13usize))
                } else {
                    None
                }
            })
            .collect();
        let fix = fixture();
        for bk in backends() {
            backend::with_backend(bk, || {
                pool::set_num_threads(1);
                let sequential: Vec<Vec<(usize, f32)>> =
                    picks.iter().map(|&p| fix.sequential(p)).collect();
                for threads in [1usize, 4] {
                    pool::set_num_threads(threads);
                    let batch: Vec<BatchMember> = picks.iter().map(|&p| fix.member(p)).collect();
                    let (out, cancelled) = fix.decoder.recover_batch_infer_ctl(
                        &fix.store,
                        &batch,
                        SegmentHead::Sparse,
                        &mut |i, j| cuts[i].is_some_and(|c| j >= c),
                    );
                    pool::set_num_threads(1);
                    for (i, path) in out.iter().enumerate() {
                        let target = batch[i].sample.target_len();
                        let want_len = cuts[i].map_or(target, |c| c.min(target));
                        let should_cancel = cuts[i].is_some_and(|c| c < target);
                        assert_eq!(
                            cancelled[i], should_cancel,
                            "member {i} cancelled flag at {threads} threads under {}",
                            bk.name()
                        );
                        assert_eq!(path.len(), want_len, "member {i} output length");
                        assert!(
                            path[..] == sequential[i][..want_len],
                            "member {i} diverged from the uncancelled prefix at \
                             {threads} threads under {}",
                            bk.name()
                        );
                    }
                }
            });
        }
    }

    /// Continuous batching: members admitted into a live decode at
    /// arbitrary ticks — possibly on the incumbents' final step, or after
    /// every incumbent has already retired — combined with arbitrary
    /// mid-decode cancellations of incumbents (grow-then-shrink on the
    /// same tick included). Admissions arrive in **waves**: every wave
    /// past the first carries 1–3 newcomers landing on the *same* tick,
    /// exercising the fused multi-newcomer splice (one stacked `W_h·keys`
    /// matmul and one concat round per wave) and not just the
    /// single-newcomer degenerate case. Incumbents must stay
    /// **bit-identical** to the closed-batch decode, and every admitted
    /// member must be bit-identical to its solo sequential decode, under
    /// every backend at 1 and 4 intra-op threads. The streamed `on_step`
    /// events must reproduce each member's output exactly, in per-member
    /// step order.
    #[test]
    fn admitted_members_leave_incumbents_bit_identical(
        batch_size in 1usize..6,
        wave_count in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        use rntrajrec_models::{DecodeHooks, GrownMember, StepOut};

        let mut rng = StdRng::seed_from_u64(seed);
        let picks: Vec<usize> = (0..batch_size)
            .map(|_| rand::Rng::gen_range(&mut rng, 0..POOL))
            .collect();
        let cuts: Vec<Option<usize>> = picks
            .iter()
            .map(|_| {
                if rand::Rng::gen_bool(&mut rng, 0.3) {
                    Some(rand::Rng::gen_range(&mut rng, 0..13usize))
                } else {
                    None
                }
            })
            .collect();
        // (admission tick, pool index) per newcomer, generated in waves:
        // newcomers within a wave share the admission tick, so the hook
        // returns them together and the fused wave splice is exercised.
        // A tick past the incumbents' lifetime means the wave never joins
        // — the hook is only polled while the session runs — and the test
        // accounts for exactly the members that did.
        let grown: Vec<(usize, usize)> = (0..wave_count)
            .flat_map(|w| {
                let at = rand::Rng::gen_range(&mut rng, 0..13usize);
                // The first wave may be a single newcomer (the old
                // degenerate shape); later waves always carry several.
                let size = if w == 0 {
                    rand::Rng::gen_range(&mut rng, 1..4usize)
                } else {
                    rand::Rng::gen_range(&mut rng, 2..4usize)
                };
                (0..size)
                    .map(|_| (at, rand::Rng::gen_range(&mut rng, 0..POOL)))
                    .collect::<Vec<_>>()
            })
            .collect();
        let fix = fixture();
        for bk in backends() {
            backend::with_backend(bk, || {
                pool::set_num_threads(1);
                let sequential: Vec<Vec<(usize, f32)>> =
                    (0..POOL).map(|p| fix.sequential(p)).collect();
                for threads in [1usize, 4] {
                    pool::set_num_threads(threads);
                    let batch: Vec<BatchMember> = picks.iter().map(|&p| fix.member(p)).collect();
                    let n = batch.len();
                    let mut tick = 0usize;
                    let mut joined: Vec<bool> = vec![false; grown.len()];
                    let mut admitted: Vec<usize> = Vec::new();
                    let mut events: Vec<StepOut> = Vec::new();
                    let mut cancel = |i: usize, j: usize| {
                        i < n && cuts[i].is_some_and(|c| j >= c)
                    };
                    let mut admit = |_live: usize| -> Vec<GrownMember> {
                        let mut v = Vec::new();
                        for (g, &(at, p)) in grown.iter().enumerate() {
                            if !joined[g] && tick >= at {
                                joined[g] = true;
                                admitted.push(p);
                                let (per_point, traj, sample) = &fix.members[p];
                                v.push(GrownMember {
                                    per_point: per_point.clone(),
                                    traj: traj.clone(),
                                    target_len: sample.target_len(),
                                    masks: sample.masks.clone(),
                                });
                            }
                        }
                        tick += 1;
                        v
                    };
                    let mut on_step = |s: StepOut| events.push(s);
                    let (out, cancelled) = fix.decoder.recover_batch_infer_stream(
                        &fix.store,
                        &batch,
                        SegmentHead::Sparse,
                        &mut DecodeHooks {
                            cancel: &mut cancel,
                            admit: &mut admit,
                            on_step: &mut on_step,
                        },
                    );
                    pool::set_num_threads(1);
                    assert_eq!(out.len(), n + admitted.len());
                    // Incumbents: the cancellation contract, bit-exact.
                    for i in 0..n {
                        let target = batch[i].sample.target_len();
                        let want_len = cuts[i].map_or(target, |c| c.min(target));
                        assert_eq!(out[i].len(), want_len, "incumbent {} length", i);
                        assert!(
                            out[i][..] == sequential[picks[i]][..want_len],
                            "incumbent {} diverged at {} threads under {}",
                            i, threads, bk.name()
                        );
                        assert_eq!(
                            cancelled[i],
                            cuts[i].is_some_and(|c| c < target),
                            "incumbent {} cancelled flag", i
                        );
                    }
                    // Admitted members: bit-identical to their solo runs.
                    for (k, &p) in admitted.iter().enumerate() {
                        assert!(
                            out[n + k][..] == sequential[p][..],
                            "admitted member {} diverged at {} threads under {}",
                            k, threads, bk.name()
                        );
                        assert!(!cancelled[n + k], "admitted member {} cut", k);
                    }
                    // The stream reproduces every output in step order.
                    let mut replayed: Vec<Vec<(usize, f32)>> = vec![Vec::new(); out.len()];
                    for e in &events {
                        assert_eq!(
                            e.step, replayed[e.member].len(),
                            "member {} streamed out of order", e.member
                        );
                        replayed[e.member].push((e.segment, e.rate));
                    }
                    assert_eq!(&replayed, &out, "streamed events diverged from outputs");
                }
            });
        }
    }
}

/// The sparse segment head must not change what the decoder *recovers*:
/// per backend, the dense and sparse routes produce identical `(segment,
/// rate)` paths (the log-prob normaliser differs by design — outputs do
/// not). This is the acceptance contract for `masked_matmul_cols`.
#[test]
fn sparse_head_recovery_matches_dense() {
    let fix = fixture();
    let batch: Vec<BatchMember> = (0..POOL).map(|p| fix.member(p)).collect();
    for bk in backends() {
        backend::with_backend(bk, || {
            pool::set_num_threads(1);
            let dense =
                fix.decoder
                    .recover_batch_infer_with(&fix.store, &batch, SegmentHead::Dense);
            let sparse =
                fix.decoder
                    .recover_batch_infer_with(&fix.store, &batch, SegmentHead::Sparse);
            assert_eq!(dense, sparse, "recovery diverged under {}", bk.name());
        });
    }
}

/// The int8 head: recovery stays valid (mask respected, rates in range)
/// and — because the quantized accumulation is exact integer arithmetic —
/// the whole decode is thread-invariant within each backend.
#[test]
fn quantized_head_recovery_is_valid_and_thread_invariant() {
    let fix = fixture();
    let q = fix.decoder.quantized_segment_head(&fix.store);
    let batch: Vec<BatchMember> = (0..POOL).map(|p| fix.member(p)).collect();
    for bk in backends() {
        backend::with_backend(bk, || {
            pool::set_num_threads(1);
            let base = fix.decoder.recover_batch_infer_with(
                &fix.store,
                &batch,
                SegmentHead::Quantized(&q),
            );
            for (m, path) in batch.iter().zip(&base) {
                assert_eq!(path.len(), m.sample.target_len());
                for (j, &(seg, rate)) in path.iter().enumerate() {
                    assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
                    if let Some(entries) = &m.sample.masks[j] {
                        if !entries.is_empty() {
                            assert!(
                                entries.iter().any(|&(s, _)| s == seg),
                                "step {j}: quantized prediction {seg} escaped the mask"
                            );
                        }
                    }
                }
            }
            for threads in [4usize, 2] {
                pool::set_num_threads(threads);
                let again = fix.decoder.recover_batch_infer_with(
                    &fix.store,
                    &batch,
                    SegmentHead::Quantized(&q),
                );
                assert_eq!(again, base, "t={threads} under {}", bk.name());
            }
            pool::set_num_threads(1);
        });
    }
}

/// `B = 1` is the degenerate batch: it must reproduce the sequential path
/// exactly (the stacked matrices are the member's own `[1, d]` rows).
#[test]
fn singleton_batch_equals_sequential() {
    let fix = fixture();
    pool::set_num_threads(1);
    for p in 0..POOL {
        let batched = fix
            .decoder
            .recover_batch_infer(&fix.store, &[fix.member(p)]);
        assert_eq!(batched[0], fix.sequential(p), "member {p} diverged at B=1");
    }
}

/// All-equal target lengths: no member ever retires early, so the stacked
/// state never compacts — the pure lock-step regime.
#[test]
fn equal_length_batch_equals_sequential() {
    let fix = fixture();
    pool::set_num_threads(1);
    // Members 3 and 4 share target length 9; repeat them.
    let picks = [3usize, 4, 3, 4];
    let sequential: Vec<Vec<(usize, f32)>> = picks.iter().map(|&p| fix.sequential(p)).collect();
    let batch: Vec<BatchMember> = picks.iter().map(|&p| fix.member(p)).collect();
    let batched = fix.decoder.recover_batch_infer(&fix.store, &batch);
    assert_eq!(batched, sequential);
}

/// The empty batch is a no-op.
#[test]
fn empty_batch_is_noop() {
    let fix = fixture();
    let batched = fix.decoder.recover_batch_infer(&fix.store, &[]);
    assert!(batched.is_empty());
}

// ===== fused batched encoder ================================================

struct EncoderFixture {
    store: ParamStore,
    encoder: RnTrajRecEncoder,
    xroad: Tensor,
    /// Sample pool with ragged input lengths, including a single-point
    /// trajectory (the degenerate sub-graph/attention case).
    samples: Vec<SampleInput>,
}

const ENC_POOL: usize = 5;

fn encoder_fixture() -> &'static EncoderFixture {
    static FIX: OnceLock<EncoderFixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let city = SyntheticCity::generate(CityConfig::tiny());
        let rtree = RTree::build(&city.net);
        let grid = city.net.grid(50.0);
        let fx = FeatureExtractor::new(&city.net, &rtree, grid);
        let mut rng = StdRng::seed_from_u64(57);
        let mut samples: Vec<SampleInput> = [(4usize, 3usize), (9, 8), (6, 5), (11, 10)]
            .iter()
            .map(|&(target_len, raw_len)| {
                let mut sim = Simulator::new(
                    &city.net,
                    SimConfig {
                        target_len,
                        ..Default::default()
                    },
                );
                fx.extract(&sim.sample(&mut rng, raw_len))
            })
            .collect();
        // Single-point member through the query path (no ground truth):
        // one GPS point, one sub-graph, attention over a single row.
        let p = fx.bbox().center();
        let single = RawTrajectory {
            points: vec![RawPoint { xy: p, t: 0.0 }],
        };
        samples.push(
            fx.extract_query(&single, 3, TimeContext::from_epoch_s(3600.0))
                .expect("single-point query extracts"),
        );
        assert_eq!(samples.len(), ENC_POOL);

        let mut store = ParamStore::new();
        let encoder = RnTrajRecEncoder::new(
            &mut store,
            &mut rng,
            &city.net,
            &grid,
            RnTrajRecConfig::small(16),
        );
        let xroad = encoder.gridgnn.infer(&store);
        EncoderFixture {
            store,
            encoder,
            xroad,
            samples,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary ragged batches (any composition, with repeats, including
    /// the single-point member) encoded in one fused pass equal the
    /// per-member [`RnTrajRecEncoder::infer_sample`] bit-for-bit, at 1 and
    /// 4 intra-op kernel threads — GraphNorm statistics must stay scoped
    /// to each member's own sub-graphs no matter what shares the batch.
    #[test]
    fn fused_encoder_equals_per_member(
        batch_size in 1usize..7,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let picks: Vec<usize> = (0..batch_size)
            .map(|_| rand::Rng::gen_range(&mut rng, 0..ENC_POOL))
            .collect();
        let fix = encoder_fixture();
        for bk in backends() {
            backend::with_backend(bk, || {
                pool::set_num_threads(1);
                let sequential: Vec<_> = picks
                    .iter()
                    .map(|&p| fix.encoder.infer_sample(&fix.store, &fix.samples[p], &fix.xroad))
                    .collect();
                for threads in [1usize, 4] {
                    pool::set_num_threads(threads);
                    let batch: Vec<&SampleInput> = picks.iter().map(|&p| &fix.samples[p]).collect();
                    let batched = fix.encoder.infer_batch(&fix.store, &batch, &fix.xroad);
                    pool::set_num_threads(1);
                    for (i, (got, want)) in batched.iter().zip(&sequential).enumerate() {
                        assert!(
                            got.per_point.data == want.per_point.data,
                            "member {i} per-point diverged at {threads} threads under {}",
                            bk.name()
                        );
                        assert!(
                            got.traj.data == want.traj.data,
                            "member {i} traj diverged at {threads} threads under {}",
                            bk.name()
                        );
                    }
                }
            });
        }
    }
}

/// `B = 1` and the single-point member: the stacked matrices degenerate to
/// the member's own rows and a one-node attention/readout scope.
#[test]
fn singleton_and_single_point_encoder_batches() {
    let fix = encoder_fixture();
    pool::set_num_threads(1);
    for p in 0..ENC_POOL {
        let batched = fix
            .encoder
            .infer_batch(&fix.store, &[&fix.samples[p]], &fix.xroad);
        let want = fix
            .encoder
            .infer_sample(&fix.store, &fix.samples[p], &fix.xroad);
        assert_eq!(
            batched[0].per_point.data, want.per_point.data,
            "member {p} diverged at B=1"
        );
        assert_eq!(batched[0].traj.data, want.traj.data);
    }
}
