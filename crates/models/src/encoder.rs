//! The trajectory-encoder interface shared by RNTrajRec and every baseline.
//!
//! The paper's comparison protocol (Remark 2) is "A + Decoder": each
//! method's *encoder* feeds the same multi-task decoder. This trait is that
//! protocol: an encoder maps a mini-batch of [`SampleInput`]s to per-point
//! hidden states `H_traj` `[l_τ, d]` and a trajectory-level vector
//! `ĥ_traj` `[1, d]` (plus, for RNTrajRec, the graph-classification
//! auxiliary loss of Eq. 18).
//!
//! Encoders may additionally provide a **tape-free inference path**
//! ([`TrajEncoder::infer_one`]): the same forward computation evaluated
//! with plain tensor ops (`rntrajrec_nn::infer`), no autograd bookkeeping.
//! Input-independent work (GridGNN's `X_road`) is split out into
//! [`TrajEncoder::precompute_road`] so a serving engine can compute it once
//! per road network and share it read-only across requests.

use rand::rngs::StdRng;

use crate::features::SampleInput;
use rntrajrec_nn::{NodeId, ParamStore, Tape, Tensor};

/// Encoder outputs for one trajectory.
#[derive(Debug, Clone, Copy)]
pub struct EncoderOutput {
    /// `[l_τ, d]` per-point hidden states (decoder attention keys).
    pub per_point: NodeId,
    /// `[1, d]` trajectory-level state (decoder initial hidden state).
    pub traj: NodeId,
}

/// Encoder outputs for a mini-batch.
pub struct BatchEncoderOutput {
    pub outputs: Vec<EncoderOutput>,
    /// Auxiliary encoder loss, already averaged (RNTrajRec's `L_enc`).
    pub aux_loss: Option<NodeId>,
}

/// Tape-free encoder outputs for one trajectory (plain tensors, no tape).
#[derive(Debug, Clone)]
pub struct InferOutput {
    /// `[l_τ, d]` per-point hidden states.
    pub per_point: Tensor,
    /// `[1, d]` trajectory-level state.
    pub traj: Tensor,
}

/// A trajectory encoder ("A" in the paper's "A + Decoder" convention).
///
/// `Send + Sync` so a trained encoder can be shared read-only (`Arc`)
/// across serving worker threads.
pub trait TrajEncoder: Send + Sync {
    fn name(&self) -> &'static str;

    /// Hidden size `d` of the outputs.
    fn dim(&self) -> usize;

    /// Encode a mini-batch on the given tape.
    fn encode(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        batch: &[&SampleInput],
        training: bool,
        rng: &mut StdRng,
    ) -> BatchEncoderOutput;

    /// Does this encoder implement the tape-free path? (Cheap probe —
    /// [`TrajEncoder::precompute_road`] actually computes the embeddings.)
    fn has_infer(&self) -> bool {
        false
    }

    /// Precompute the input-independent road representation (`X_road` for
    /// RNTrajRec), if this encoder has one. Serving engines call this once
    /// per road network and pass the result to every [`TrajEncoder::infer_one`].
    fn precompute_road(&self, _store: &ParamStore) -> Option<Tensor> {
        None
    }

    /// Tape-free single-trajectory inference. Returns `None` when the
    /// encoder has no forward-only implementation (the serving engine then
    /// refuses to build; training-time `encode` is unaffected).
    ///
    /// `road` is the cached [`TrajEncoder::precompute_road`] output; pass
    /// `None` to recompute it for this call.
    fn infer_one(
        &self,
        _store: &ParamStore,
        _sample: &SampleInput,
        _road: Option<&Tensor>,
    ) -> Option<InferOutput> {
        None
    }

    /// Tape-free **batched** inference over a whole micro-batch.
    ///
    /// The contract every implementation must honour: the output for each
    /// member is **bit-identical** to [`TrajEncoder::infer_one`] on that
    /// member alone — batch composition must be unobservable in the
    /// results (the serving engine batches requests from unrelated
    /// clients). The default runs members one by one; encoders with a
    /// fused path (RNTrajRec stacks all members' rows per block and scopes
    /// GraphNorm statistics per member) override it.
    fn infer_batch(
        &self,
        store: &ParamStore,
        samples: &[&SampleInput],
        road: Option<&Tensor>,
    ) -> Option<Vec<InferOutput>> {
        samples
            .iter()
            .map(|s| self.infer_one(store, s, road))
            .collect()
    }
}
