//! The trajectory-encoder interface shared by RNTrajRec and every baseline.
//!
//! The paper's comparison protocol (Remark 2) is "A + Decoder": each
//! method's *encoder* feeds the same multi-task decoder. This trait is that
//! protocol: an encoder maps a mini-batch of [`SampleInput`]s to per-point
//! hidden states `H_traj` `[l_τ, d]` and a trajectory-level vector
//! `ĥ_traj` `[1, d]` (plus, for RNTrajRec, the graph-classification
//! auxiliary loss of Eq. 18).

use rand::rngs::StdRng;

use crate::features::SampleInput;
use rntrajrec_nn::{NodeId, ParamStore, Tape};

/// Encoder outputs for one trajectory.
#[derive(Debug, Clone, Copy)]
pub struct EncoderOutput {
    /// `[l_τ, d]` per-point hidden states (decoder attention keys).
    pub per_point: NodeId,
    /// `[1, d]` trajectory-level state (decoder initial hidden state).
    pub traj: NodeId,
}

/// Encoder outputs for a mini-batch.
pub struct BatchEncoderOutput {
    pub outputs: Vec<EncoderOutput>,
    /// Auxiliary encoder loss, already averaged (RNTrajRec's `L_enc`).
    pub aux_loss: Option<NodeId>,
}

/// A trajectory encoder ("A" in the paper's "A + Decoder" convention).
pub trait TrajEncoder {
    fn name(&self) -> &'static str;

    /// Hidden size `d` of the outputs.
    fn dim(&self) -> usize;

    /// Encode a mini-batch on the given tape.
    fn encode(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        batch: &[&SampleInput],
        training: bool,
        rng: &mut StdRng,
    ) -> BatchEncoderOutput;
}
