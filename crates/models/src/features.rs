//! Feature extraction: from a [`TrajSample`] to model-ready inputs.
//!
//! Everything non-learned is computed once here: normalised raw-point
//! features, grid indices, the per-point weighted sub-graphs of Section
//! IV-C, the decoder constraint masks of Section V, and the supervision
//! targets.

use std::sync::Arc;

use rntrajrec_geo::{BBox, GridSpec, XY};
use rntrajrec_nn::{GraphCsr, Tensor};
use rntrajrec_roadnet::{RTree, RoadNetwork, SegmentId};
use rntrajrec_synth::{MatchedTrajectory, RawTrajectory, TimeContext, TrajSample};

/// The weighted sub-graph `Ĝ_τ,i = (V_τ,i, E_τ,i, W_τ,i)` around one GPS
/// point (Section IV-C).
#[derive(Debug, Clone)]
pub struct SubGraph {
    /// Road-segment indices; row `r` of the sub-graph feature matrix is
    /// segment `nodes[r]`.
    pub nodes: Vec<usize>,
    /// Adjacency among `nodes` (induced from the road graph, undirected
    /// with self-loops — the GAT attention neighbourhood).
    pub csr: Arc<GraphCsr>,
    /// `ω(e, p) = exp(-dist²/γ²)` per node (Eq. 5).
    pub weights: Vec<f32>,
    /// Row of the ground-truth segment, if it is inside the sub-graph
    /// (used by the graph classification loss, Eq. 18).
    pub true_row: Option<usize>,
}

/// One trajectory converted to model inputs + supervision.
#[derive(Debug, Clone)]
pub struct SampleInput {
    /// `[l_τ, 5]`: normalised x, y, t, grid-x, grid-y per raw point.
    pub base_feats: Tensor,
    /// Flat grid-cell index per raw point (for grid-embedding lookups).
    pub grid_flat: Vec<usize>,
    /// Nearest road segment per raw point (GTS-style POI anchor).
    pub nearest_seg: Vec<usize>,
    /// Per-point weighted sub-graphs.
    pub subgraphs: Vec<SubGraph>,
    /// Environmental context `f_e` (hour one-hot + holiday, Section IV-F).
    pub env: [f32; 25],
    /// Ground-truth road segment index per target step (`l_ρ`).
    pub target_segs: Vec<usize>,
    /// Ground-truth moving ratio per target step.
    pub target_rates: Vec<f32>,
    /// Constraint mask per target step (Section V): a `Some` sparse
    /// `(segment, weight)` list of the segments within the mask radius of
    /// the step's GPS position — observed points directly, missing steps
    /// via linear interpolation between the surrounding observed points
    /// (with the radius widened by half the gap chord). `None` (all-ones)
    /// when the neighbourhood is empty or the step precedes/follows every
    /// observed point.
    pub masks: Vec<Option<Vec<(usize, f32)>>>,
    /// Target step index of each raw input point.
    pub obs_step: Vec<usize>,
    /// Ground-truth segment of each raw input point (graph classification
    /// loss supervision).
    pub input_true_segs: Vec<usize>,
    /// Normalised ground-truth planar coordinates per target step
    /// `[l_ρ, 2]` (supervision for the DHTR position-regression baseline).
    pub target_xy_norm: Tensor,
}

impl SampleInput {
    pub fn input_len(&self) -> usize {
        self.grid_flat.len()
    }

    pub fn target_len(&self) -> usize {
        self.target_segs.len()
    }
}

/// Why a query-time extraction was refused ([`FeatureExtractor::extract_query`]).
///
/// These are the validation failures reachable from *network input* (the
/// HTTP layer maps them to field-precise `400`s): they must be typed
/// errors, never panics, because a panic on one request would take a
/// serving worker down with it.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The raw trajectory carries no points.
    EmptyTrajectory,
    /// `target_len` is zero — there is nothing to recover.
    ZeroTargetLen,
    /// A GPS point has a non-finite coordinate or timestamp (NaN / ±∞
    /// survive in-process callers even though the wire format rejects
    /// them): grid and sub-graph lookups are undefined on such points.
    NonFinitePoint {
        /// Index into the raw trajectory.
        index: usize,
    },
    /// A GPS point lies farther than the sub-graph receptive field δ
    /// outside the study area — no road segment could fall inside its
    /// receptive field, so features would be meaningless (an antipodal
    /// coordinate, a unit mix-up). Points *within* the margin are kept:
    /// ordinary GPS noise at the map boundary still resolves.
    OffSite {
        /// Index into the raw trajectory.
        index: usize,
        /// Distance to the study area in metres.
        dist_m: f64,
        /// The accepted margin (δ) in metres.
        margin_m: f64,
    },
}

impl QueryError {
    /// The wire-request field this error faults (for field-precise 400s).
    pub fn field(&self) -> &'static str {
        match self {
            QueryError::ZeroTargetLen => "target_len",
            _ => "points",
        }
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::EmptyTrajectory => write!(f, "at least one GPS point is required"),
            QueryError::ZeroTargetLen => write!(f, "target_len must be >= 1"),
            QueryError::NonFinitePoint { index } => {
                write!(f, "point {index} has a non-finite coordinate or timestamp")
            }
            QueryError::OffSite {
                index,
                dist_m,
                margin_m,
            } => write!(
                f,
                "point {index} lies {dist_m:.0} m outside the study area \
                 (max accepted: {margin_m:.0} m)"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// Converts [`TrajSample`]s into [`SampleInput`]s for a fixed road network.
pub struct FeatureExtractor<'a> {
    pub net: &'a RoadNetwork,
    pub rtree: &'a RTree,
    pub grid: GridSpec,
    /// Receptive field δ of the sub-graph generation (paper: 400 m).
    pub delta_m: f64,
    /// Influence bandwidth γ of Eq. (5) (paper: 30 m).
    pub gamma_m: f64,
    /// Constraint-mask bandwidth β (paper: 15 m).
    pub beta_m: f64,
    /// Constraint-mask radius — "maximum error of the GPS device"
    /// (paper: 100 m).
    pub mask_radius_m: f64,
    bbox: BBox,
}

impl<'a> FeatureExtractor<'a> {
    pub fn new(net: &'a RoadNetwork, rtree: &'a RTree, grid: GridSpec) -> Self {
        Self::with_bbox(net, rtree, grid, net.bbox())
    }

    /// Like [`FeatureExtractor::new`] but reusing an already-computed
    /// study-area bounding box — [`RoadNetwork::bbox`] scans every segment
    /// geometry, which a per-request caller (the HTTP serving path) must
    /// not repeat. `bbox` must be `net.bbox()`'s value for normalisation
    /// to stay consistent.
    pub fn with_bbox(net: &'a RoadNetwork, rtree: &'a RTree, grid: GridSpec, bbox: BBox) -> Self {
        Self {
            net,
            rtree,
            grid,
            delta_m: 400.0,
            gamma_m: 30.0,
            beta_m: 15.0,
            mask_radius_m: 100.0,
            bbox,
        }
    }

    /// Study-area bounding box used for coordinate normalisation.
    pub fn bbox(&self) -> &BBox {
        &self.bbox
    }

    /// Invert the feature normalisation back to planar metres (used by the
    /// DHTR position-regression baseline at inference time).
    pub fn denormalize(&self, x_norm: f32, y_norm: f32) -> XY {
        XY::new(
            self.bbox.min_x + x_norm as f64 * self.bbox.width().max(1.0),
            self.bbox.min_y + y_norm as f64 * self.bbox.height().max(1.0),
        )
    }

    /// Build the weighted sub-graph around a planar point.
    pub fn subgraph_at(&self, p: &XY, true_seg: Option<SegmentId>) -> SubGraph {
        let mut hits = self.rtree.within_radius(self.net, p, self.delta_m);
        if hits.is_empty() {
            hits = self.rtree.k_nearest(self.net, p, 5);
        }
        let nodes: Vec<usize> = hits.iter().map(|h| h.seg.index()).collect();
        let gamma2 = (self.gamma_m * self.gamma_m) as f32;
        let weights: Vec<f32> = hits
            .iter()
            .map(|h| {
                let d = h.projection.dist as f32;
                // Floor keeps far nodes participating (and weights summable).
                (-(d * d) / gamma2).exp().max(1e-6)
            })
            .collect();
        // Induced adjacency: E_p = (V_p × V_p) ∩ E, undirected for GAT.
        let index_of: std::collections::HashMap<usize, usize> = nodes
            .iter()
            .enumerate()
            .map(|(row, &seg)| (seg, row))
            .collect();
        let lists: Vec<Vec<usize>> = nodes
            .iter()
            .map(|&seg| {
                self.net
                    .neighbors_undirected(SegmentId(seg as u32))
                    .into_iter()
                    .filter_map(|n| index_of.get(&n.index()).copied())
                    .collect()
            })
            .collect();
        let csr = Arc::new(GraphCsr::from_neighbor_lists(&lists, true));
        let true_row = true_seg.and_then(|s| index_of.get(&s.index()).copied());
        SubGraph {
            nodes,
            csr,
            weights,
            true_row,
        }
    }

    /// Full conversion of one supervised sample.
    pub fn extract(&self, sample: &TrajSample) -> SampleInput {
        let duration = sample.target.points.last().map_or(1.0, |p| p.t.max(1.0));
        self.extract_inner(
            &sample.raw,
            sample.target.len(),
            duration,
            sample.time_context(),
            Some(&sample.target),
        )
    }

    /// Query-time conversion: a raw trajectory with **no ground truth** —
    /// what an online request carries over the wire. Every
    /// inference-relevant field (`base_feats`, `grid_flat`, sub-graphs,
    /// `env`, constraint `masks`, `obs_step`, and the decode length) is
    /// computed exactly as [`FeatureExtractor::extract`] computes it;
    /// supervision-only fields (`target_segs`/`target_rates`,
    /// `input_true_segs`, `target_xy_norm`, sub-graph `true_row`) are
    /// filled with neutral values, which the tape-free inference path
    /// never reads. The recovery window spans the raw trajectory
    /// (`duration` = last raw timestamp), matching the simulator's
    /// down-sampling convention of always keeping the final point.
    ///
    /// # Errors
    /// Network input reaches this function, so every invalid shape is a
    /// typed [`QueryError`] (mapped to a field-precise `400` by the HTTP
    /// layer), never a panic: empty trajectories, a zero `target_len`,
    /// non-finite coordinates/timestamps, and points farther than the
    /// receptive field δ ([`FeatureExtractor::delta_m`]) outside the study
    /// area are all rejected up front.
    pub fn extract_query(
        &self,
        raw: &RawTrajectory,
        target_len: usize,
        time: TimeContext,
    ) -> Result<SampleInput, QueryError> {
        if raw.is_empty() {
            return Err(QueryError::EmptyTrajectory);
        }
        if target_len == 0 {
            return Err(QueryError::ZeroTargetLen);
        }
        let site = self.bbox.inflated(self.delta_m);
        for (index, p) in raw.points.iter().enumerate() {
            if !(p.xy.x.is_finite() && p.xy.y.is_finite() && p.t.is_finite()) {
                return Err(QueryError::NonFinitePoint { index });
            }
            if !site.contains(&p.xy) {
                return Err(QueryError::OffSite {
                    index,
                    dist_m: self.bbox.dist_to_point(&p.xy),
                    margin_m: self.delta_m,
                });
            }
        }
        let duration = raw.points.last().map_or(1.0, |p| p.t.max(1.0));
        Ok(self.extract_inner(raw, target_len, duration, time, None))
    }

    fn extract_inner(
        &self,
        raw: &RawTrajectory,
        l_rho: usize,
        duration: f64,
        time: TimeContext,
        truth: Option<&MatchedTrajectory>,
    ) -> SampleInput {
        let l_tau = raw.len();
        let width = self.bbox.width().max(1.0);
        let height = self.bbox.height().max(1.0);

        // Map each input point to its target step (timestamps align by
        // construction of the down-sampling).
        let eps = duration / (l_rho - 1).max(1) as f64;
        let obs_step: Vec<usize> = raw
            .points
            .iter()
            .map(|p| ((p.t / eps).round() as usize).min(l_rho - 1))
            .collect();

        let mut feats = Tensor::zeros(l_tau, 5);
        let mut grid_flat = Vec::with_capacity(l_tau);
        let mut nearest_seg = Vec::with_capacity(l_tau);
        let mut subgraphs = Vec::with_capacity(l_tau);
        let mut input_true_segs = Vec::with_capacity(l_tau);
        for (i, p) in raw.points.iter().enumerate() {
            let cell = self.grid.cell_of(&p.xy);
            feats.set(i, 0, ((p.xy.x - self.bbox.min_x) / width) as f32);
            feats.set(i, 1, ((p.xy.y - self.bbox.min_y) / height) as f32);
            feats.set(i, 2, (p.t / duration) as f32);
            feats.set(i, 3, cell.col as f32 / self.grid.cols as f32);
            feats.set(i, 4, cell.row as f32 / self.grid.rows as f32);
            grid_flat.push(self.grid.flat_index(cell));
            let nearest = self
                .rtree
                .nearest(self.net, &p.xy)
                .map(|h| h.seg.index())
                .unwrap_or(0);
            nearest_seg.push(nearest);
            let true_seg = truth.map(|t| t.points[obs_step[i]].pos.seg);
            input_true_segs.push(true_seg.map_or(0, |s| s.index()));
            subgraphs.push(self.subgraph_at(&p.xy, true_seg));
        }

        // Supervision (neutral zeros for query-time inputs) + constraint
        // masks.
        let beta2 = (self.beta_m * self.beta_m) as f32;
        let mut target_segs = vec![0usize; l_rho];
        let mut target_rates = vec![0.0f32; l_rho];
        let mut target_xy_norm = Tensor::zeros(l_rho, 2);
        let mut masks: Vec<Option<Vec<(usize, f32)>>> = vec![None; l_rho];
        if let Some(target) = truth {
            for (j, mp) in target.points.iter().enumerate() {
                target_segs[j] = mp.pos.seg.index();
                target_rates[j] = mp.pos.frac as f32;
                let xy = mp.pos.xy(self.net);
                target_xy_norm.set(j, 0, ((xy.x - self.bbox.min_x) / width) as f32);
                target_xy_norm.set(j, 1, ((xy.y - self.bbox.min_y) / height) as f32);
            }
        }
        let mask_at = |xy: &XY, radius_m: f64| -> Option<Vec<(usize, f32)>> {
            let hits = self.rtree.within_radius(self.net, xy, radius_m);
            if hits.is_empty() {
                return None; // keep all-ones mask rather than forbidding everything
            }
            Some(
                hits.iter()
                    .map(|h| {
                        let d = h.projection.dist as f32;
                        (h.seg.index(), (-(d * d) / beta2).exp().max(1e-6))
                    })
                    .collect(),
            )
        };
        for (i, p) in raw.points.iter().enumerate() {
            if let Some(entries) = mask_at(&p.xy, self.mask_radius_m) {
                masks[obs_step[i]] = Some(entries);
            }
        }
        // Missing steps (Section V): the constraint mask is centred on the
        // GPS position linearly interpolated between the surrounding
        // observed points. The interpolated point can sit off the true
        // path by up to roughly half the gap chord, so the search radius
        // widens with the gap; an empty neighbourhood stays all-ones.
        let observed: Vec<(usize, XY)> = {
            let mut at: Vec<Option<XY>> = vec![None; l_rho];
            for (i, p) in raw.points.iter().enumerate() {
                at[obs_step[i]] = Some(p.xy);
            }
            at.iter()
                .enumerate()
                .filter_map(|(j, o)| o.map(|xy| (j, xy)))
                .collect()
        };
        for w in observed.windows(2) {
            let ((j0, a), (j1, b)) = (w[0], w[1]);
            if j1 <= j0 + 1 {
                continue;
            }
            let radius = self.mask_radius_m + 0.5 * a.dist(&b);
            for (j, m) in masks.iter_mut().enumerate().take(j1).skip(j0 + 1) {
                if m.is_none() {
                    let frac = (j - j0) as f64 / (j1 - j0) as f64;
                    *m = mask_at(&a.lerp(&b, frac), radius);
                }
            }
        }

        SampleInput {
            base_feats: feats,
            grid_flat,
            nearest_seg,
            subgraphs,
            env: time.features(),
            target_segs,
            target_rates,
            masks,
            obs_step,
            input_true_segs,
            target_xy_norm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rntrajrec_roadnet::{CityConfig, SyntheticCity};
    use rntrajrec_synth::{SimConfig, Simulator};

    fn setup() -> (SyntheticCity, RTree) {
        let city = SyntheticCity::generate(CityConfig::tiny());
        let rtree = RTree::build(&city.net);
        (city, rtree)
    }

    fn sample(city: &SyntheticCity, seed: u64) -> TrajSample {
        let mut sim = Simulator::new(&city.net, SimConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        sim.sample(&mut rng, 8)
    }

    #[test]
    fn extract_shapes_consistent() {
        let (city, rtree) = setup();
        let fx = FeatureExtractor::new(&city.net, &rtree, city.net.grid(50.0));
        let s = sample(&city, 1);
        let input = fx.extract(&s);
        assert_eq!(input.input_len(), s.raw.len());
        assert_eq!(input.target_len(), s.target.len());
        assert_eq!(input.base_feats.shape(), (s.raw.len(), 5));
        assert_eq!(input.subgraphs.len(), s.raw.len());
        assert_eq!(input.masks.len(), s.target.len());
        assert_eq!(input.obs_step.len(), s.raw.len());
    }

    /// A query-time extraction from the same raw trajectory must agree
    /// with the supervised extraction on every field inference reads —
    /// this is what makes HTTP-served recovery bit-identical to the
    /// in-process engine fed with supervised `SampleInput`s.
    #[test]
    fn extract_query_matches_extract_on_inference_fields() {
        let (city, rtree) = setup();
        let fx = FeatureExtractor::new(&city.net, &rtree, city.net.grid(50.0));
        let s = sample(&city, 3);
        let supervised = fx.extract(&s);
        let query = fx
            .extract_query(&s.raw, s.target.len(), s.time_context())
            .expect("valid query");

        assert_eq!(query.base_feats.data, supervised.base_feats.data);
        assert_eq!(query.grid_flat, supervised.grid_flat);
        assert_eq!(query.nearest_seg, supervised.nearest_seg);
        assert_eq!(query.env, supervised.env);
        assert_eq!(query.masks, supervised.masks);
        assert_eq!(query.obs_step, supervised.obs_step);
        assert_eq!(query.target_len(), supervised.target_len());
        assert_eq!(query.subgraphs.len(), supervised.subgraphs.len());
        for (q, sgt) in query.subgraphs.iter().zip(&supervised.subgraphs) {
            assert_eq!(q.nodes, sgt.nodes);
            assert_eq!(q.weights, sgt.weights);
            assert_eq!(q.csr.as_ref(), sgt.csr.as_ref());
            assert_eq!(q.true_row, None, "query sub-graphs carry no truth");
        }
        // Supervision stays neutral.
        assert!(query.target_segs.iter().all(|&s| s == 0));
        assert!(query.target_rates.iter().all(|&r| r == 0.0));
    }

    /// Every malformed query shape reachable from network input must come
    /// back as a typed [`QueryError`] — these used to be `assert!`s, i.e.
    /// panics a request body could trigger inside a serving worker.
    #[test]
    fn extract_query_rejects_invalid_input_without_panicking() {
        use rntrajrec_synth::{RawPoint, RawTrajectory};
        let (city, rtree) = setup();
        let fx = FeatureExtractor::new(&city.net, &rtree, city.net.grid(50.0));
        let mk = |points: Vec<(f64, f64, f64)>| RawTrajectory {
            points: points
                .into_iter()
                .map(|(x, y, t)| RawPoint {
                    xy: XY::new(x, y),
                    t,
                })
                .collect(),
        };
        let ctx = TimeContext::from_epoch_s(0.0);
        let inside = fx.bbox().center();

        let empty = mk(vec![]);
        assert_eq!(
            fx.extract_query(&empty, 3, ctx).err(),
            Some(QueryError::EmptyTrajectory)
        );
        let ok = mk(vec![(inside.x, inside.y, 0.0)]);
        assert_eq!(
            fx.extract_query(&ok, 0, ctx).err(),
            Some(QueryError::ZeroTargetLen)
        );
        assert_eq!(QueryError::ZeroTargetLen.field(), "target_len");

        for (x, y, t) in [
            (f64::NAN, inside.y, 0.0),
            (inside.x, f64::INFINITY, 0.0),
            (inside.x, inside.y, f64::NEG_INFINITY),
        ] {
            let bad = mk(vec![(inside.x, inside.y, 0.0), (x, y, t)]);
            assert_eq!(
                fx.extract_query(&bad, 3, ctx).err(),
                Some(QueryError::NonFinitePoint { index: 1 }),
                "({x}, {y}, {t}) must be rejected as non-finite"
            );
        }

        // An antipodal-scale coordinate: finite but nowhere near the map.
        let far = mk(vec![(inside.x, inside.y, 0.0), (2.0e7, -2.0e7, 10.0)]);
        match fx.extract_query(&far, 3, ctx) {
            Err(QueryError::OffSite {
                index, margin_m, ..
            }) => {
                assert_eq!(index, 1);
                assert_eq!(margin_m, fx.delta_m);
            }
            other => panic!("expected OffSite, got {other:?}"),
        }
        assert_eq!(
            QueryError::NonFinitePoint { index: 1 }.field(),
            "points",
            "point errors must fault the points field"
        );

        // Boundary noise within δ of the study area still extracts.
        let edge = mk(vec![(
            fx.bbox().min_x - fx.delta_m * 0.5,
            fx.bbox().min_y,
            0.0,
        )]);
        assert!(fx.extract_query(&edge, 2, ctx).is_ok());
    }

    #[test]
    fn features_are_normalised() {
        let (city, rtree) = setup();
        let fx = FeatureExtractor::new(&city.net, &rtree, city.net.grid(50.0));
        let input = fx.extract(&sample(&city, 2));
        for v in &input.base_feats.data {
            assert!((-0.5..=1.5).contains(v), "feature {v} badly scaled");
        }
    }

    #[test]
    fn subgraph_weights_decay_with_distance() {
        let (city, rtree) = setup();
        let fx = FeatureExtractor::new(&city.net, &rtree, city.net.grid(50.0));
        let p = city
            .net
            .segment(SegmentId(0))
            .geometry
            .point_at_fraction(0.5);
        let sg = fx.subgraph_at(&p, Some(SegmentId(0)));
        assert!(!sg.nodes.is_empty());
        // Hits are distance-sorted, so weights must be non-increasing.
        for w in sg.weights.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        // The on-segment point has weight ≈ 1 for its own segment.
        assert!(sg.weights[0] > 0.9, "nearest weight {}", sg.weights[0]);
        assert_eq!(sg.true_row, Some(0));
    }

    #[test]
    fn subgraph_adjacency_is_induced() {
        let (city, rtree) = setup();
        let fx = FeatureExtractor::new(&city.net, &rtree, city.net.grid(50.0));
        let p = city
            .net
            .segment(SegmentId(5))
            .geometry
            .point_at_fraction(0.2);
        let sg = fx.subgraph_at(&p, None);
        for (row, &seg) in sg.nodes.iter().enumerate() {
            let global: Vec<usize> = city
                .net
                .neighbors_undirected(SegmentId(seg as u32))
                .iter()
                .map(|s| s.index())
                .collect();
            for &nbr_row in sg.csr.neighbors(row) {
                let nbr_seg = sg.nodes[nbr_row];
                assert!(
                    nbr_seg == seg || global.contains(&nbr_seg),
                    "edge {seg}->{nbr_seg} not in road graph"
                );
            }
        }
    }

    #[test]
    fn masks_cover_observed_and_interpolated_steps() {
        let (city, rtree) = setup();
        let fx = FeatureExtractor::new(&city.net, &rtree, city.net.grid(50.0));
        let s = sample(&city, 3);
        let input = fx.extract(&s);
        let observed: std::collections::HashSet<usize> = input.obs_step.iter().copied().collect();
        let first = *input.obs_step.iter().min().unwrap();
        let last = *input.obs_step.iter().max().unwrap();
        let mut constrained_missing = 0usize;
        let mut missing = 0usize;
        for (j, m) in input.masks.iter().enumerate() {
            if observed.contains(&j) {
                assert!(m.is_some(), "observed step {j} missing mask");
            } else if j < first || j > last {
                // No surrounding observations to interpolate between.
                assert!(m.is_none(), "step {j} outside the observed span");
            } else {
                missing += 1;
                constrained_missing += m.is_some() as usize;
            }
        }
        // Interpolated masks cover the gaps (Section V): the simulator's
        // GPS points sit well inside the study area, so the widened-radius
        // neighbourhood is essentially never empty.
        assert!(
            missing == 0 || constrained_missing * 2 > missing,
            "only {constrained_missing}/{missing} missing steps constrained"
        );
        // The masked sparse head relies on masks staying sparse: a mask
        // must not simply enumerate the whole vocabulary.
        for m in input.masks.iter().flatten() {
            assert!(
                m.len() < city.net.num_segments(),
                "constraint mask is dense ({} of {} segments)",
                m.len(),
                city.net.num_segments()
            );
        }
    }

    #[test]
    fn mask_weights_in_unit_interval() {
        let (city, rtree) = setup();
        let fx = FeatureExtractor::new(&city.net, &rtree, city.net.grid(50.0));
        let input = fx.extract(&sample(&city, 4));
        for m in input.masks.iter().flatten() {
            for &(seg, w) in m {
                assert!(seg < city.net.num_segments());
                assert!((0.0..=1.0).contains(&w));
            }
        }
    }

    #[test]
    fn true_segment_usually_in_subgraph() {
        // δ = 400 m with ~10 m GPS noise: the ground-truth segment should
        // almost always be inside the receptive field.
        let (city, rtree) = setup();
        let fx = FeatureExtractor::new(&city.net, &rtree, city.net.grid(50.0));
        let mut hit = 0;
        let mut total = 0;
        for seed in 0..5 {
            let input = fx.extract(&sample(&city, seed));
            for sg in &input.subgraphs {
                total += 1;
                hit += sg.true_row.is_some() as usize;
            }
        }
        assert!(hit as f64 / total as f64 > 0.9, "{hit}/{total}");
    }
}
