//! Attention modules: multi-head self-attention (Eq. 10), sinusoidal
//! positional encoding (Eq. 12) and the decoder's additive attention
//! (Eq. 14).

use std::ops::Range;

use rand::rngs::StdRng;

use crate::layers::Linear;
use rntrajrec_nn::{infer, Init, NodeId, ParamId, ParamStore, Tape, Tensor};

/// Multi-head scaled dot-product self-attention (Eq. 10).
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    pub heads: usize,
    pub dim: usize,
}

impl MultiHeadAttention {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        dim: usize,
        heads: usize,
    ) -> Self {
        assert!(
            dim.is_multiple_of(heads),
            "dim {dim} must divide into {heads} heads"
        );
        Self {
            wq: Linear::new(store, rng, &format!("{name}.wq"), dim, dim, false),
            wk: Linear::new(store, rng, &format!("{name}.wk"), dim, dim, false),
            wv: Linear::new(store, rng, &format!("{name}.wv"), dim, dim, false),
            wo: Linear::new(store, rng, &format!("{name}.wo"), dim, dim, false),
            heads,
            dim,
        }
    }

    /// Self-attention over `x: [L, dim]`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let q = self.wq.forward(tape, store, x);
        let k = self.wk.forward(tape, store, x);
        let v = self.wv.forward(tape, store, x);
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut heads = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = tape.select_cols(q, h * dh, dh);
            let kh = tape.select_cols(k, h * dh, dh);
            let vh = tape.select_cols(v, h * dh, dh);
            let scores = tape.matmul_nt(qh, kh); // [L, L]
            let scores = tape.scale(scores, scale);
            let alphas = tape.softmax_rows(scores);
            heads.push(tape.matmul(alphas, vh));
        }
        let cat = tape.concat_cols(&heads);
        self.wo.forward(tape, store, cat)
    }

    /// Tape-free twin of [`MultiHeadAttention::forward`].
    pub fn infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let q = self.wq.infer(store, x);
        let k = self.wk.infer(store, x);
        let v = self.wv.infer(store, x);
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut heads = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = infer::select_cols(&q, h * dh, dh);
            let kh = infer::select_cols(&k, h * dh, dh);
            let vh = infer::select_cols(&v, h * dh, dh);
            let scores = infer::scale(&infer::matmul_nt(&qh, &kh), scale);
            let alphas = infer::softmax_rows(&scores);
            heads.push(infer::matmul(&alphas, &vh));
        }
        let refs: Vec<&Tensor> = heads.iter().collect();
        self.wo.infer(store, &infer::concat_cols(&refs))
    }

    /// Batched tape-free self-attention over a stack of trajectories:
    /// `x` holds every member's rows concatenated, `segs` the (ordered,
    /// disjoint) row range of each member. The q/k/v/output projections
    /// run as **one** stacked matmul each, while the attention reduction
    /// stays scoped to each member's own rows via
    /// `infer::segmented_self_attention` — so every output row is
    /// bit-identical to [`MultiHeadAttention::infer`] on the member alone.
    pub fn infer_segments(&self, store: &ParamStore, x: &Tensor, segs: &[Range<usize>]) -> Tensor {
        let q = self.wq.infer(store, x);
        let k = self.wk.infer(store, x);
        let v = self.wv.infer(store, x);
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut heads = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = infer::select_cols(&q, h * dh, dh);
            let kh = infer::select_cols(&k, h * dh, dh);
            let vh = infer::select_cols(&v, h * dh, dh);
            heads.push(infer::segmented_self_attention(&qh, &kh, &vh, segs, scale));
        }
        let refs: Vec<&Tensor> = heads.iter().collect();
        self.wo.infer(store, &infer::concat_cols(&refs))
    }
}

/// Sinusoidal positional encoding table (Vaswani et al.), added to the
/// GPSFormer input (Eq. 12).
#[derive(Debug, Clone)]
pub struct PositionalEncoding {
    pub dim: usize,
}

impl PositionalEncoding {
    pub fn new(dim: usize) -> Self {
        Self { dim }
    }

    /// The constant `[len, dim]` table.
    pub fn table(&self, len: usize) -> Tensor {
        let mut t = Tensor::zeros(len, self.dim);
        for pos in 0..len {
            for i in 0..self.dim / 2 {
                let freq = 1.0 / 10_000f32.powf(2.0 * i as f32 / self.dim as f32);
                let angle = pos as f32 * freq;
                t.set(pos, 2 * i, angle.sin());
                if 2 * i + 1 < self.dim {
                    t.set(pos, 2 * i + 1, angle.cos());
                }
            }
        }
        t
    }

    /// `x + PE` (Eq. 12).
    pub fn add_to(&self, tape: &mut Tape, x: NodeId) -> NodeId {
        let len = tape.value(x).rows;
        let pe = tape.leaf(self.table(len));
        tape.add(x, pe)
    }
}

/// Additive (Bahdanau) attention used by the decoder (Eq. 14):
/// `μ_i = vᵀ·tanh(W_g·h_prev + W_h·h_i)`, `α = softmax(μ)`, `a = Σ α_i h_i`.
#[derive(Debug, Clone)]
pub struct AdditiveAttention {
    pub wg: ParamId,
    pub wh: ParamId,
    pub v: ParamId,
    pub dim: usize,
}

impl AdditiveAttention {
    pub fn new(store: &mut ParamStore, rng: &mut StdRng, name: &str, dim: usize) -> Self {
        Self {
            wg: store.add(format!("{name}.wg"), dim, dim, Init::Xavier, rng),
            wh: store.add(format!("{name}.wh"), dim, dim, Init::Xavier, rng),
            v: store.add(format!("{name}.v"), 1, dim, Init::Xavier, rng),
            dim,
        }
    }

    /// `query: [1, dim]`, `keys: [L, dim]` → context `[1, dim]`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        query: NodeId,
        keys: NodeId,
    ) -> NodeId {
        let wg = tape.param(store, self.wg);
        let wh = tape.param(store, self.wh);
        let v = tape.param(store, self.v);
        let gq = tape.matmul(query, wg); // [1, d]
        let hk = tape.matmul(keys, wh); // [L, d]
        let sum = tape.add_rowvec(hk, gq);
        let t = tape.tanh(sum); // [L, d]
        let mu = tape.matmul_nt(v, t); // [1, L]
        let alphas = tape.softmax_rows(mu); // [1, L]
        tape.matmul(alphas, keys) // [1, d]
    }

    /// Tape-free twin of [`AdditiveAttention::forward`].
    pub fn infer(&self, store: &ParamStore, query: &Tensor, keys: &Tensor) -> Tensor {
        let gq = infer::matmul(query, store.value(self.wg));
        let hk = infer::matmul(keys, store.value(self.wh));
        let t = infer::tanh(&infer::add_rowvec(&hk, &gq));
        let mu = infer::matmul_nt(store.value(self.v), &t);
        let alphas = infer::softmax_rows(&mu);
        infer::matmul(&alphas, keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mha_shape_preserved() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, &mut rng, "m", 8, 2);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::uniform(5, 8, 1.0, &mut rng));
        let y = mha.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (5, 8));
        assert!(tape.value(y).all_finite());
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn mha_rejects_indivisible_heads() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let _ = MultiHeadAttention::new(&mut store, &mut rng, "m", 7, 2);
    }

    #[test]
    fn mha_is_permutation_sensitive_only_via_content() {
        // Without positional encoding, permuting rows permutes outputs.
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, &mut rng, "m", 4, 2);
        let mut tape = Tape::new();
        let data = Tensor::from_vec(2, 4, vec![0.1, 0.2, 0.3, 0.4, -0.5, 0.6, -0.7, 0.8]);
        let mut swapped = Tensor::zeros(2, 4);
        swapped.data[..4].copy_from_slice(&data.data[4..]);
        swapped.data[4..].copy_from_slice(&data.data[..4]);
        let x = tape.leaf(data);
        let xs = tape.leaf(swapped);
        let y = mha.forward(&mut tape, &store, x);
        let ys = mha.forward(&mut tape, &store, xs);
        let y0: Vec<f32> = tape.value(y).row_slice(0).to_vec();
        let ys1: Vec<f32> = tape.value(ys).row_slice(1).to_vec();
        for (a, b) in y0.iter().zip(&ys1) {
            assert!((a - b).abs() < 1e-5, "equivariance violated: {a} vs {b}");
        }
    }

    #[test]
    fn positional_encoding_rows_are_distinct() {
        let pe = PositionalEncoding::new(16);
        let t = pe.table(10);
        assert_eq!(t.shape(), (10, 16));
        for r in 1..10 {
            let diff: f32 = t
                .row_slice(0)
                .iter()
                .zip(t.row_slice(r))
                .map(|(a, b)| (a - b).abs())
                .sum();
            assert!(diff > 0.1, "row {r} too similar to row 0");
        }
        // Bounded in [-1, 1].
        assert!(t.data.iter().all(|&x| (-1.0..=1.0).contains(&x)));
    }

    #[test]
    fn additive_attention_returns_convex_combination() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let attn = AdditiveAttention::new(&mut store, &mut rng, "a", 4);
        let mut tape = Tape::new();
        let q = tape.leaf(Tensor::uniform(1, 4, 1.0, &mut rng));
        // Keys all equal -> context must equal that key regardless of scores.
        let keys = tape.leaf(Tensor::from_vec(3, 4, [0.5f32, -0.25, 0.75, 0.1].repeat(3)));
        let ctx = attn.forward(&mut tape, &store, q, keys);
        let v = tape.value(ctx);
        for (got, want) in v.data.iter().zip([0.5, -0.25, 0.75, 0.1]) {
            assert!((got - want).abs() < 1e-5);
        }
    }
}
