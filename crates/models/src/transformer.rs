//! The standard transformer encoder layer (Section IV-E).

use std::ops::Range;

use rand::rngs::StdRng;

use crate::attention::MultiHeadAttention;
use crate::layers::{FeedForward, LayerNorm};
use rntrajrec_nn::{infer, NodeId, ParamStore, Tape, Tensor};

/// `LayerNorm(x + MultiHead(x))` then `LayerNorm(x + FFN(x))` — the
/// temporal-modelling half of each GPSFormer block.
#[derive(Debug, Clone)]
pub struct TransformerEncoderLayer {
    pub mha: MultiHeadAttention,
    pub ffn: FeedForward,
    pub ln1: LayerNorm,
    pub ln2: LayerNorm,
}

impl TransformerEncoderLayer {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        dim: usize,
        heads: usize,
        ffn_hidden: usize,
    ) -> Self {
        Self {
            mha: MultiHeadAttention::new(store, rng, &format!("{name}.mha"), dim, heads),
            ffn: FeedForward::new(store, rng, &format!("{name}.ffn"), dim, ffn_hidden),
            ln1: LayerNorm::new(store, rng, &format!("{name}.ln1"), dim),
            ln2: LayerNorm::new(store, rng, &format!("{name}.ln2"), dim),
        }
    }

    /// `x: [L, dim] -> [L, dim]`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let attn = self.mha.forward(tape, store, x);
        let res1 = tape.add(x, attn);
        let h = self.ln1.forward(tape, store, res1);
        let ff = self.ffn.forward(tape, store, h);
        let res2 = tape.add(h, ff);
        self.ln2.forward(tape, store, res2)
    }

    /// Tape-free twin of [`TransformerEncoderLayer::forward`].
    pub fn infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let attn = self.mha.infer(store, x);
        let h = self.ln1.infer(store, &infer::add(x, &attn));
        let ff = self.ffn.infer(store, &h);
        self.ln2.infer(store, &infer::add(&h, &ff))
    }

    /// Batched tape-free twin over a stack of trajectories (`segs` are the
    /// members' row ranges): the attention reduction is member-scoped
    /// ([`MultiHeadAttention::infer_segments`]) while the residual adds,
    /// layer norms (row-local by construction), and FFN matmuls run once
    /// over the whole stack — every output row bit-identical to
    /// [`TransformerEncoderLayer::infer`] on the member alone.
    pub fn infer_segments(&self, store: &ParamStore, x: &Tensor, segs: &[Range<usize>]) -> Tensor {
        let attn = self.mha.infer_segments(store, x, segs);
        let h = self.ln1.infer(store, &infer::add(x, &attn));
        let ff = self.ffn.infer(store, &h);
        self.ln2.infer(store, &infer::add(&h, &ff))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rntrajrec_nn::{Adam, Tensor};

    #[test]
    fn shape_preserved_and_finite() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = TransformerEncoderLayer::new(&mut store, &mut rng, "t", 8, 2, 16);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::uniform(6, 8, 1.0, &mut rng));
        let y = layer.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (6, 8));
        assert!(tape.value(y).all_finite());
    }

    #[test]
    fn stackable_two_layers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let l1 = TransformerEncoderLayer::new(&mut store, &mut rng, "t1", 8, 2, 16);
        let l2 = TransformerEncoderLayer::new(&mut store, &mut rng, "t2", 8, 2, 16);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::uniform(4, 8, 1.0, &mut rng));
        let h = l1.forward(&mut tape, &store, x);
        let y = l2.forward(&mut tape, &store, h);
        assert_eq!(tape.value(y).shape(), (4, 8));
    }

    #[test]
    fn learns_to_attend_to_marked_row() {
        // Task: every row must output the feature of the row whose last
        // channel is 1 (requires attention across the sequence).
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let layer = TransformerEncoderLayer::new(&mut store, &mut rng, "t", 4, 1, 8);
        let head = crate::layers::Linear::new(&mut store, &mut rng, "h", 4, 1, true);
        let mut opt = Adam::new(0.01);
        // Two training sequences with the marker at different positions.
        let mk = |marker_row: usize, value: f32| {
            let mut t = Tensor::zeros(3, 4);
            for r in 0..3 {
                t.set(r, 0, 0.1 * r as f32);
            }
            t.set(marker_row, 3, 1.0);
            t.set(marker_row, 1, value);
            t
        };
        let cases = [(mk(0, 0.8), 0.8f32), (mk(2, -0.6), -0.6), (mk(1, 0.3), 0.3)];
        let mut last = f32::INFINITY;
        for _ in 0..250 {
            let mut tape = Tape::new();
            let mut losses = Vec::new();
            for (x, target) in &cases {
                let xid = tape.leaf(x.clone());
                let h = layer.forward(&mut tape, &store, xid);
                let y = head.forward(&mut tape, &store, h); // [3,1]
                let t = tape.leaf(Tensor::full(3, 1, *target));
                let d = tape.sub(y, t);
                let sq = tape.mul(d, d);
                losses.push(sq);
            }
            let all = tape.concat_rows(&losses);
            let loss = tape.mean_all(all);
            last = tape.value(loss).item();
            store.zero_grad();
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!(
            last < 0.05,
            "transformer failed to learn attention task: {last}"
        );
    }
}
