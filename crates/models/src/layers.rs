//! Basic neural layers: linear, layer norm, feed-forward MLP.

use rand::rngs::StdRng;

use rntrajrec_nn::{infer, Init, NodeId, ParamId, ParamStore, Tape, Tensor};

/// Fully connected layer `y = x·W (+ b)`.
#[derive(Debug, Clone)]
pub struct Linear {
    pub w: ParamId,
    pub b: Option<ParamId>,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = store.add(format!("{name}.w"), in_dim, out_dim, Init::Xavier, rng);
        let b = bias.then(|| store.add(format!("{name}.b"), 1, out_dim, Init::Zeros, rng));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// `x: [N, in] -> [N, out]`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let w = tape.param(store, self.w);
        let y = tape.matmul(x, w);
        match self.b {
            Some(b) => {
                let b = tape.param(store, b);
                tape.add_rowvec(y, b)
            }
            None => y,
        }
    }

    /// Tape-free twin of [`Linear::forward`].
    pub fn infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let y = infer::matmul(x, store.value(self.w));
        match self.b {
            Some(b) => infer::add_rowvec(&y, store.value(b)),
            None => y,
        }
    }
}

/// Layer normalisation over the last dimension (per row), with learnable
/// gain/bias — the transformer-encoder normaliser (Section IV-E).
#[derive(Debug, Clone)]
pub struct LayerNorm {
    pub gamma: ParamId,
    pub beta: ParamId,
    pub dim: usize,
    pub eps: f32,
}

impl LayerNorm {
    pub fn new(store: &mut ParamStore, rng: &mut StdRng, name: &str, dim: usize) -> Self {
        let gamma = store.add(format!("{name}.gamma"), 1, dim, Init::Ones, rng);
        let beta = store.add(format!("{name}.beta"), 1, dim, Init::Zeros, rng);
        Self {
            gamma,
            beta,
            dim,
            eps: 1e-5,
        }
    }

    /// `x: [N, dim] -> [N, dim]`, each row normalised independently.
    ///
    /// Runs the fused `layer_norm` kernel (one statistics pass + one
    /// normalise-and-affine pass) instead of the nine-op primitive chain;
    /// the forward value is bit-identical to the composed route and the op
    /// carries its own analytic backward.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let gamma = tape.param(store, self.gamma);
        let beta = tape.param(store, self.beta);
        tape.layer_norm(x, gamma, beta, self.eps)
    }

    /// Tape-free twin of [`LayerNorm::forward`] (same fused kernel, so
    /// results are bit-identical).
    pub fn infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        infer::layer_norm(x, store.value(self.gamma), store.value(self.beta), self.eps)
    }
}

/// Position-wise feed-forward network `FFN(x) = ReLU(xW₁+b₁)W₂+b₂` (Eq. 11).
#[derive(Debug, Clone)]
pub struct FeedForward {
    pub l1: Linear,
    pub l2: Linear,
}

impl FeedForward {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        dim: usize,
        hidden: usize,
    ) -> Self {
        Self {
            l1: Linear::new(store, rng, &format!("{name}.ffn1"), dim, hidden, true),
            l2: Linear::new(store, rng, &format!("{name}.ffn2"), hidden, dim, true),
        }
    }

    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let h = self.l1.forward(tape, store, x);
        let h = tape.relu(h);
        self.l2.forward(tape, store, h)
    }

    /// Tape-free twin of [`FeedForward::forward`].
    pub fn infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let h = infer::relu(&self.l1.infer(store, x));
        self.l2.infer(store, &h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rntrajrec_nn::{Adam, Tensor};

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, &mut rng, "l", 4, 3, true);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(2, 4));
        let y = lin.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (2, 3));
        // Zero input -> output equals bias (zeros initially).
        assert!(tape.value(y).data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn linear_learns_identity_map() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, &mut rng, "l", 2, 2, true);
        let mut opt = Adam::new(0.05);
        let x_data = Tensor::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, -0.5]);
        for _ in 0..300 {
            let mut tape = Tape::new();
            let x = tape.leaf(x_data.clone());
            let y = lin.forward(&mut tape, &store, x);
            let diff = tape.sub(y, x);
            let sq = tape.mul(diff, diff);
            let loss = tape.mean_all(sq);
            store.zero_grad();
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let mut tape = Tape::new();
        let x = tape.leaf(x_data.clone());
        let y = lin.forward(&mut tape, &store, x);
        assert!(tape.value(y).max_abs_diff(&x_data) < 0.05);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, &mut rng, "ln", 6);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(
            2,
            6,
            vec![
                10.0, 12.0, 8.0, 11.0, 9.0, 10.0, -5.0, 0.0, 5.0, 2.0, -2.0, 0.0,
            ],
        ));
        let y = ln.forward(&mut tape, &store, x);
        let v = tape.value(y);
        for r in 0..2 {
            let row = v.row_slice(r);
            let mean: f32 = row.iter().sum::<f32>() / 6.0;
            let var: f32 = row.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 6.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
    }

    #[test]
    fn layer_norm_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, &mut rng, "ln", 4);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let y = ln.forward(&mut tape, &store, x);
        let loss = tape.mean_all(y);
        store.zero_grad();
        tape.backward(loss, &mut store);
        assert!(store.grad(ln.gamma).data.iter().any(|&g| g != 0.0));
        // Beta gradient of mean loss is uniform 1/4.
        assert!(store
            .grad(ln.beta)
            .data
            .iter()
            .all(|&g| (g - 0.25).abs() < 1e-6));
    }

    #[test]
    fn feed_forward_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let ffn = FeedForward::new(&mut store, &mut rng, "f", 8, 16);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(3, 8));
        let y = ffn.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (3, 8));
    }
}
