//! The multi-task decoder (Section IV-G + V), proposed in MTrajRec [11] and
//! shared by every method in the comparison ("A + Decoder", Remark 2).
//!
//! A GRU with additive attention over the encoder outputs (Eq. 14–15)
//! predicts, per target timestamp, the road segment (classification with a
//! constraint mask, Eq. 16) and the moving ratio (regression, Eq. 17).

use std::ops::Range;

use rand::rngs::StdRng;

use crate::attention::AdditiveAttention;
use crate::encoder::EncoderOutput;
use crate::features::SampleInput;

use crate::rnn::GruCell;
use rntrajrec_nn::quant::QuantizedLinear;
use rntrajrec_nn::{infer, Init, NodeId, ParamId, ParamStore, Tape, Tensor};

/// Log-weight assigned to segments outside the constraint mask
/// (`exp(-30) ≈ 1e-13`: effectively zero probability, numerically safe).
const MASKED_OUT_LOGW: f32 = -30.0;

/// One member's per-step sparse mask log-weights (`None` for unmasked
/// steps), precomputed once per batched decode.
type StepLogMasks = Vec<Option<Vec<(usize, f32)>>>;

/// Which implementation computes the Eq. 16 road-segment head on the
/// tape-free decode paths.
///
/// `Sparse` is the default: the constraint mask already enumerates the
/// allowed segments, so [`infer::masked_matmul_cols`] computes only those
/// columns of the `[B,d]×[d,|V|]` product (an algorithmic FLOP reduction
/// proportional to the mask's skip ratio) and normalises over them alone.
/// Recovery outputs (argmax segment + rate) match the dense route —
/// pinned in `batch_decode_parity.rs` and gated in `check_bench` — while
/// masked-out columns become exact `-∞` log-probabilities instead of the
/// soft `exp(-30)` leakage. `Dense` keeps the historical full-matmul
/// route (reference + unmasked workloads); `Quantized` runs the sparse
/// route over int8 per-channel weights ([`QuantizedLinear`]), trading a
/// bounded accuracy drift (gated in `check_bench`) for a smaller, faster
/// weight matrix.
#[derive(Clone, Copy)]
pub enum SegmentHead<'a> {
    /// Dense `[B,d]×[d,|V|]` matmul + fused soft-mask log-softmax.
    Dense,
    /// Mask-allowed columns only, fused with the allowed-column
    /// log-softmax (the serving default).
    Sparse,
    /// Sparse-aware int8 head over pre-quantized weights.
    Quantized(&'a QuantizedLinear),
}

/// Decoder configuration.
#[derive(Debug, Clone)]
pub struct DecoderConfig {
    pub dim: usize,
    pub num_segments: usize,
    /// Apply the constraint mask of Section V (ablation toggle).
    pub use_mask: bool,
}

/// One member of a fused decode batch ([`Decoder::recover_batch_infer`]):
/// its tape-free encoder outputs plus the request's step metadata.
pub struct BatchMember<'a> {
    /// `[l_τ, d]` per-point encoder states (decoder attention keys).
    pub per_point: &'a Tensor,
    /// `[1, d]` trajectory-level state (initial decoder hidden state).
    pub traj: &'a Tensor,
    /// The request (target length and constraint masks).
    pub sample: &'a SampleInput,
}

/// A member admitted into a live decode mid-flight (continuous
/// batching): its encoder pass ran *during* the decode, so the decode
/// owns its tensors — unlike [`BatchMember`], which borrows from a batch
/// assembled before the decode started.
pub struct GrownMember {
    /// `[l_τ, d]` per-point encoder states (decoder attention keys).
    pub per_point: Tensor,
    /// `[1, d]` trajectory-level state (initial decoder hidden state).
    pub traj: Tensor,
    /// Number of decode steps this member wants.
    pub target_len: usize,
    /// Per-step constraint masks (same layout as `SampleInput::masks`).
    pub masks: Vec<Option<Vec<(usize, f32)>>>,
}

/// One decoded step of one member, streamed out of
/// [`Decoder::recover_batch_infer_stream`] as it is produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOut {
    /// Member index: initial members first (batch order), then grown
    /// members in admission order.
    pub member: usize,
    /// The member's own step index (0-based; a grown member's step 0 may
    /// run at any global tick).
    pub step: usize,
    /// Predicted road segment (Eq. 16 argmax).
    pub segment: usize,
    /// Predicted moving ratio (Eq. 17).
    pub rate: f32,
    /// Log-probability of the predicted segment under the (masked) head.
    pub logprob: f32,
}

/// Control hooks for [`Decoder::recover_batch_infer_stream`].
pub struct DecodeHooks<'h> {
    /// `cancel(member, step)` — asked before each of the member's steps
    /// whether it should retire (deadline / dropped-handle propagation).
    pub cancel: &'h mut dyn FnMut(usize, usize) -> bool,
    /// Called between decode steps with the live batch size; returned
    /// members are spliced into the stacked state and decode from their
    /// own step 0. Return an empty vec to keep the batch closed.
    pub admit: &'h mut dyn FnMut(usize) -> Vec<GrownMember>,
    /// Observes every decoded step in production order (streaming sink).
    pub on_step: &'h mut dyn FnMut(StepOut),
}

/// The result of decoding one trajectory.
pub struct DecoderRun {
    /// Per-step log-probabilities over segments `[1, |V|]` (post-mask).
    pub logps: Vec<NodeId>,
    /// Per-step predicted moving ratio `[1, 1]`.
    pub rates: Vec<NodeId>,
    /// Per-step argmax segment prediction.
    pub preds: Vec<usize>,
}

/// The multi-task GRU decoder.
pub struct Decoder {
    seg_emb: ParamId,
    start_emb: ParamId,
    attn: AdditiveAttention,
    gru: GruCell,
    w_id: ParamId,
    b_id: ParamId,
    w_rate: ParamId,
    pub config: DecoderConfig,
}

impl Decoder {
    pub fn new(store: &mut ParamStore, rng: &mut StdRng, config: DecoderConfig) -> Self {
        let d = config.dim;
        Self {
            seg_emb: store.add(
                "dec.seg_emb",
                config.num_segments,
                d,
                Init::Uniform(0.1),
                rng,
            ),
            start_emb: store.add("dec.start", 1, d, Init::Uniform(0.1), rng),
            attn: AdditiveAttention::new(store, rng, "dec.attn", d),
            // Input: [x_{j-1} ∥ r_{j-1} ∥ a_j] (Eq. 15).
            gru: GruCell::new(store, rng, "dec.gru", 2 * d + 1, d),
            w_id: store.add("dec.w_id", d, config.num_segments, Init::Xavier, rng),
            b_id: store.add("dec.b_id", 1, config.num_segments, Init::Zeros, rng),
            w_rate: store.add("dec.w_rate", 2 * d, 1, Init::Xavier, rng),
            config,
        }
    }

    /// The constraint-mask log-weight row of Eq. (16): allowed segments
    /// carry `ln w`, everything else the effectively-zero
    /// [`MASKED_OUT_LOGW`]. Used by the tape path; the tape-free paths
    /// feed the same log-weights sparsely into the fused
    /// `masked_log_softmax_rows` kernel via [`Decoder::mask_logw_entries`].
    fn mask_logw_row(&self, entries: &[(usize, f32)]) -> Tensor {
        let mut logw = vec![MASKED_OUT_LOGW; self.config.num_segments];
        for &(seg, w) in entries {
            logw[seg] = w.max(1e-6).ln();
        }
        Tensor::row(logw)
    }

    /// Sparse `(segment, log-weight)` mask entries for one decode step —
    /// `None` when masking is off or the step carries no mask. The same
    /// `ln(max(w, 1e-6))` transform as [`Decoder::mask_logw_row`], without
    /// materialising the `[1, |V|]` row; shared by both tape-free decode
    /// paths.
    fn mask_logw_entries(&self, mask: &Option<Vec<(usize, f32)>>) -> Option<Vec<(usize, f32)>> {
        match (self.config.use_mask, mask) {
            (true, Some(entries)) => Some(
                entries
                    .iter()
                    .map(|&(seg, w)| (seg, w.max(1e-6).ln()))
                    .collect(),
            ),
            _ => None,
        }
    }

    /// Quantize this decoder's segment-head weights to int8 for
    /// [`SegmentHead::Quantized`]; done once at model load, not per
    /// request.
    pub fn quantized_segment_head(&self, store: &ParamStore) -> QuantizedLinear {
        QuantizedLinear::from_weights(store.value(self.w_id))
    }

    /// Decode all `l_ρ` steps. With `teacher_forcing` the ground-truth
    /// segment/rate feed the next step (training); otherwise the model's
    /// own predictions do (inference).
    pub fn run(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        enc: &EncoderOutput,
        sample: &SampleInput,
        teacher_forcing: bool,
    ) -> DecoderRun {
        self.run_scheduled(tape, store, enc, sample, |_| teacher_forcing)
    }

    /// Decode with per-step scheduled sampling: `use_truth(j)` decides
    /// whether step `j` conditions on the ground truth (true) or on the
    /// model's own prediction (false). Decaying the teacher-forcing
    /// probability over training mitigates exposure bias at small data
    /// scale (DHTR [19] trains its seq2seq the same way).
    pub fn run_scheduled(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        enc: &EncoderOutput,
        sample: &SampleInput,
        mut use_truth: impl FnMut(usize) -> bool,
    ) -> DecoderRun {
        let l_rho = sample.target_len();
        let seg_table = tape.param(store, self.seg_emb);
        let w_id = tape.param(store, self.w_id);
        let b_id = tape.param(store, self.b_id);
        let w_rate = tape.param(store, self.w_rate);

        let mut h = enc.traj;
        let mut x_prev = tape.param(store, self.start_emb);
        let mut r_prev = tape.leaf(Tensor::scalar(0.0));
        let mut logps = Vec::with_capacity(l_rho);
        let mut rates = Vec::with_capacity(l_rho);
        let mut preds = Vec::with_capacity(l_rho);

        for j in 0..l_rho {
            // Eq. (14): attention over encoder outputs.
            let a = self.attn.forward(tape, store, h, enc.per_point);
            // Eq. (15): GRU update.
            let input = tape.concat_cols(&[x_prev, r_prev, a]);
            h = self.gru.step(tape, store, input, h);

            // Road-segment head with constraint mask (Eq. 16).
            let logits = tape.matmul(h, w_id);
            let logits = tape.add_rowvec(logits, b_id);
            let masked = match (self.config.use_mask, &sample.masks[j]) {
                (true, Some(entries)) => {
                    let lw = tape.leaf(self.mask_logw_row(entries));
                    tape.add(logits, lw)
                }
                _ => logits,
            };
            let logp = tape.log_softmax_rows(masked);
            let pred = tape.value(logp).argmax_row(0);

            // Next-step conditioning (teacher forcing vs. own prediction).
            let teach = use_truth(j);
            let cond_seg = if teach { sample.target_segs[j] } else { pred };
            let x_j = tape.gather_rows(seg_table, &[cond_seg]);

            // Moving-ratio head (Eq. 17): σ([x_j ∥ h_j]·w_rate).
            let rate_in = tape.concat_cols(&[x_j, h]);
            let rate_lin = tape.matmul(rate_in, w_rate);
            let rate = tape.sigmoid(rate_lin);

            logps.push(logp);
            rates.push(rate);
            preds.push(pred);

            x_prev = x_j;
            r_prev = if teach {
                tape.leaf(Tensor::scalar(sample.target_rates[j]))
            } else {
                rate
            };
        }
        DecoderRun {
            logps,
            rates,
            preds,
        }
    }

    /// Tape-free greedy decode (the serving hot path): the twin of
    /// [`Decoder::run`] with `teacher_forcing = false`, evaluated with
    /// plain tensor ops. Returns the predicted `(segment, rate)` per
    /// target step.
    ///
    /// Every step's heavy math (the `[1,d]×[d,|V|]` segment-head matmul,
    /// the GRU and attention products) runs on `rntrajrec_nn::kernels`,
    /// which parallelises wide outputs by disjoint column ranges — the
    /// `NN_THREADS` knob cuts per-step latency without changing a bit of
    /// the output. `rntrajrec_nn::kernels::matmul_invocations` deltas
    /// around this call count the per-step matmuls (`serve_bench` records
    /// them as the baseline for fusing same-length decoder steps).
    pub fn infer_run(
        &self,
        store: &ParamStore,
        per_point: &Tensor,
        traj: &Tensor,
        sample: &SampleInput,
    ) -> Vec<(usize, f32)> {
        self.infer_run_with(store, per_point, traj, sample, SegmentHead::Sparse)
    }

    /// [`Decoder::infer_run`] with an explicit [`SegmentHead`] variant
    /// (benchmarks and parity tests compare routes; serving may select
    /// the quantized head).
    pub fn infer_run_with(
        &self,
        store: &ParamStore,
        per_point: &Tensor,
        traj: &Tensor,
        sample: &SampleInput,
        head: SegmentHead<'_>,
    ) -> Vec<(usize, f32)> {
        let l_rho = sample.target_len();
        let seg_table = store.value(self.seg_emb);
        let w_id = store.value(self.w_id);
        let b_id = store.value(self.b_id);
        let w_rate = store.value(self.w_rate);

        let mut h = traj.clone();
        let mut x_prev = store.value(self.start_emb).clone();
        let mut r_prev = Tensor::scalar(0.0);
        let mut out = Vec::with_capacity(l_rho);

        for j in 0..l_rho {
            // Eq. (14): attention over encoder outputs.
            let a = self.attn.infer(store, &h, per_point);
            // Eq. (15): GRU update.
            let input = infer::concat_cols(&[&x_prev, &r_prev, &a]);
            h = self.gru.infer_step(store, &input, &h);

            // Road-segment head with constraint mask (Eq. 16): sparse by
            // default — only the mask-allowed columns of `[1,d]×[d,|V|]`
            // are computed, fused with the allowed-column log-softmax.
            let logw = self.mask_logw_entries(&sample.masks[j]);
            let mask = logw.as_deref().map(|entries| infer::SparseLogMask {
                default: MASKED_OUT_LOGW,
                entries,
            });
            let logp = match head {
                SegmentHead::Dense => {
                    let logits = infer::add_rowvec(&infer::matmul(&h, w_id), b_id);
                    infer::masked_log_softmax_rows(&logits, &[mask])
                }
                SegmentHead::Sparse => infer::masked_matmul_cols(&h, w_id, b_id, &[mask]),
                SegmentHead::Quantized(q) => q.forward_masked(&h, b_id, &[mask]),
            };
            let pred = logp.argmax_row(0);

            let x_j = infer::gather_rows(seg_table, &[pred]);
            // Moving-ratio head (Eq. 17).
            let rate_in = infer::concat_cols(&[&x_j, &h]);
            let rate = infer::sigmoid(&infer::matmul(&rate_in, w_rate));
            out.push((pred, rate.item()));

            x_prev = x_j;
            r_prev = rate;
        }
        out
    }

    /// Fused batched greedy decode: recover a whole micro-batch in
    /// lock-step, stacking every member's current hidden state into one
    /// `[B, d]` matrix so each decode step runs **one** stacked matmul per
    /// head — the `[B,d]×[d,|V|]` segment head, the `[B,2d]×[2d,1]` rate
    /// head, the three GRU gates, the attention query projection — instead
    /// of `B` separate `[1, d]` products. Members attend over their own
    /// (ragged-length) encoder outputs through the segmented kernels, the
    /// key projection `W_h·H_traj` is hoisted out of the step loop (it is
    /// input-constant), and the active stack shrinks as shorter members
    /// finish.
    ///
    /// Because every kernel involved computes each output row/segment with
    /// exactly the accumulation order of the member's own `[1, d]` call,
    /// the result is **bit-identical** to running [`Decoder::infer_run`]
    /// per member, at any thread count and for any batch composition —
    /// property-tested in `tests/batch_decode_parity.rs`.
    pub fn recover_batch_infer(
        &self,
        store: &ParamStore,
        members: &[BatchMember<'_>],
    ) -> Vec<Vec<(usize, f32)>> {
        self.recover_batch_infer_with(store, members, SegmentHead::Sparse)
    }

    /// [`Decoder::recover_batch_infer`] with an explicit [`SegmentHead`]
    /// variant.
    pub fn recover_batch_infer_with(
        &self,
        store: &ParamStore,
        members: &[BatchMember<'_>],
        head: SegmentHead<'_>,
    ) -> Vec<Vec<(usize, f32)>> {
        self.recover_batch_infer_ctl(store, members, head, &mut |_, _| false)
            .0
    }

    /// [`Decoder::recover_batch_infer_with`] with **mid-decode
    /// cancellation**: before each lock-step `j`, `cancel(member, j)` is
    /// asked whether that member should stop decoding (the serving engine
    /// passes a deadline check; tests pass arbitrary step predicates).
    /// Cancelled members are retired through the *same* `gather_rows`
    /// compaction that retires finished members, so every surviving row
    /// keeps its exact value and survivors stay **bit-identical** to an
    /// uncancelled run — property-tested in `tests/batch_decode_parity.rs`.
    ///
    /// Returns the per-member outputs (a cancelled member holds the prefix
    /// decoded before its cut, itself bit-identical to the uncancelled
    /// run's prefix) and a per-member cancelled flag.
    pub fn recover_batch_infer_ctl(
        &self,
        store: &ParamStore,
        members: &[BatchMember<'_>],
        head: SegmentHead<'_>,
        cancel: &mut dyn FnMut(usize, usize) -> bool,
    ) -> (Vec<Vec<(usize, f32)>>, Vec<bool>) {
        let mut admit = |_: usize| Vec::new();
        let mut on_step = |_: StepOut| {};
        self.recover_batch_infer_stream(
            store,
            members,
            head,
            &mut DecodeHooks {
                cancel,
                admit: &mut admit,
                on_step: &mut on_step,
            },
        )
    }

    /// The general fused decode loop: **continuous batching** plus
    /// **streamed steps**. Between lock-step decode ticks the `admit`
    /// hook may splice new members into the live `[B, d]` stack — their
    /// attention keys and key projections append as fresh rows (matmul
    /// and every other kernel here is row/member-segment-scoped, so
    /// incumbents' rows are untouched bit-for-bit and the newcomer's
    /// rows are exactly its solo products), their hidden state starts
    /// from `traj` / `start_emb` / rate 0 just as a closed batch would —
    /// and every produced `(segment, rate, logprob)` is handed to
    /// `on_step` in production order.
    ///
    /// Each member advances its **own** step counter: a grown member's
    /// step 0 runs at whatever global tick it was admitted. Because no
    /// kernel mixes rows across members, incumbents decode bit-identically
    /// whether or not anyone joins — property-tested in
    /// `tests/batch_decode_parity.rs` alongside the cancellation path.
    ///
    /// Returns per-member outputs and cancelled flags, indexed with the
    /// initial members first and grown members after, in admission order.
    pub fn recover_batch_infer_stream(
        &self,
        store: &ParamStore,
        members: &[BatchMember<'_>],
        head: SegmentHead<'_>,
        hooks: &mut DecodeHooks<'_>,
    ) -> (Vec<Vec<(usize, f32)>>, Vec<bool>) {
        let d = self.config.dim;
        let n = members.len();
        let mut cancelled = vec![false; n];
        let mut out: Vec<Vec<(usize, f32)>> = members
            .iter()
            .map(|m| Vec::with_capacity(m.sample.target_len()))
            .collect();
        let mut target_lens: Vec<usize> = members.iter().map(|m| m.sample.target_len()).collect();
        // Per-member step cursor: equals the global tick for initial
        // members, but a grown member admitted at tick t is at step 0.
        let mut steps: Vec<usize> = vec![0; n];
        let mut active: Vec<usize> = (0..n).filter(|&i| target_lens[i] > 0).collect();

        let seg_table = store.value(self.seg_emb);
        let w_id = store.value(self.w_id);
        let b_id = store.value(self.b_id);
        let w_rate = store.value(self.w_rate);
        let wg = store.value(self.attn.wg);
        let wh = store.value(self.attn.wh);
        let v_attn = store.value(self.attn.v);

        // Loop-invariant hoists: the stacked attention keys, their
        // projection `W_h·H_traj` (one matmul for the whole batch — the
        // sequential path recomputes it every step), per-member row ranges
        // into both stacks, and the sparse mask log-weights per step.
        // All grow by appended rows when a member is admitted mid-decode.
        let keys: Vec<&Tensor> = members.iter().map(|m| m.per_point).collect();
        let mut keys_all = if keys.is_empty() {
            Tensor::zeros(0, d)
        } else {
            infer::concat_rows(&keys)
        };
        let mut hk_all = infer::matmul(&keys_all, wh);
        let mut ranges: Vec<Range<usize>> = Vec::with_capacity(n);
        let mut off = 0;
        for m in members {
            ranges.push(off..off + m.per_point.rows);
            off += m.per_point.rows;
        }
        let mut logw: Vec<StepLogMasks> = members
            .iter()
            .map(|m| {
                m.sample
                    .masks
                    .iter()
                    .map(|mk| self.mask_logw_entries(mk))
                    .collect()
            })
            .collect();

        // Stacked decoder state over the active members (rows in `active`
        // order).
        let trajs: Vec<&Tensor> = active.iter().map(|&i| members[i].traj).collect();
        let mut h = if trajs.is_empty() {
            Tensor::zeros(0, d)
        } else {
            infer::concat_rows(&trajs)
        };
        let mut x_prev = infer::repeat_rows(store.value(self.start_emb), active.len());
        let mut r_prev = Tensor::zeros(active.len(), 1);

        let mut tick: u32 = 0;
        loop {
            // Admission gate (continuous batching): splice newcomers into
            // the live stack before the next lock-step tick. The whole
            // arrival wave is fused — one stacked `W_h·keys` matmul over
            // every newcomer's rows and one concat round per state tensor,
            // instead of one matmul and four concats per newcomer. A fresh
            // member's state rows are byte-for-byte what a closed batch
            // would have initialised: matmul and row concatenation are
            // row-scoped, so stacking the wave changes nothing.
            let wave = (hooks.admit)(active.len());
            if !wave.is_empty() {
                let mut key_off = keys_all.rows;
                let mut new_keys: Vec<&Tensor> = Vec::with_capacity(wave.len());
                let mut new_trajs: Vec<&Tensor> = Vec::with_capacity(wave.len());
                for g in &wave {
                    let i = target_lens.len();
                    target_lens.push(g.target_len);
                    logw.push(
                        g.masks
                            .iter()
                            .map(|mk| self.mask_logw_entries(mk))
                            .collect(),
                    );
                    steps.push(0);
                    out.push(Vec::with_capacity(g.target_len));
                    cancelled.push(false);
                    if g.target_len == 0 {
                        ranges.push(0..0);
                        continue;
                    }
                    ranges.push(key_off..key_off + g.per_point.rows);
                    key_off += g.per_point.rows;
                    new_keys.push(&g.per_point);
                    new_trajs.push(&g.traj);
                    active.push(i);
                }
                if !new_keys.is_empty() {
                    let stacked_keys = infer::concat_rows(&new_keys);
                    let hk_new = infer::matmul(&stacked_keys, wh);
                    let stacked_trajs = infer::concat_rows(&new_trajs);
                    let grown = new_keys.len();
                    keys_all = infer::concat_rows(&[&keys_all, &stacked_keys]);
                    hk_all = infer::concat_rows(&[&hk_all, &hk_new]);
                    h = infer::concat_rows(&[&h, &stacked_trajs]);
                    x_prev = infer::concat_rows(&[
                        &x_prev,
                        &infer::repeat_rows(store.value(self.start_emb), grown),
                    ]);
                    r_prev = infer::concat_rows(&[&r_prev, &Tensor::zeros(grown, 1)]);
                }
            }
            if active.is_empty() {
                break;
            }
            // Cancellation gate (deadline / dropped-handle propagation):
            // members whose budget expired are retired *before* the step
            // runs, through the same gather_rows compaction that retires
            // finished members below — a pure row copy, so surviving rows
            // keep their exact values and decode on bit-identically.
            let cut: Vec<bool> = active
                .iter()
                .map(|&i| (hooks.cancel)(i, steps[i]))
                .collect();
            if cut.iter().any(|&c| c) {
                let keep: Vec<usize> = (0..active.len()).filter(|&s| !cut[s]).collect();
                for (s, &i) in active.iter().enumerate() {
                    if cut[s] {
                        cancelled[i] = true;
                    }
                }
                h = infer::gather_rows(&h, &keep);
                x_prev = infer::gather_rows(&x_prev, &keep);
                r_prev = infer::gather_rows(&r_prev, &keep);
                active = keep.iter().map(|&s| active[s]).collect();
                if active.is_empty() {
                    continue; // the admit hook may still have members to run
                }
            }
            let b = active.len();
            // One observability span per lock-step decode tick (rendered
            // `decoder.step[t]`); no-op unless tracing is enabled.
            let _step_span = rntrajrec_obs::span_indexed("decoder.step", tick);
            // Eq. (14): additive attention, all members in lock-step — one
            // stacked query projection, one stacked score product, then
            // the per-member softmax/context over ragged segments.
            let gq = infer::matmul(&h, wg);
            let segs: Vec<Range<usize>> = active.iter().map(|&i| ranges[i].clone()).collect();
            let pre = infer::segments_add_rowvec(&hk_all, &gq, &segs);
            let t = infer::tanh(&pre);
            let mu = infer::matmul_nt(v_attn, &t);
            let lens: Vec<usize> = segs.iter().map(|s| s.len()).collect();
            let alphas = infer::softmax_segments(&mu, &lens);
            let a = infer::segmented_attn_context(&alphas, &keys_all, &segs);

            // Eq. (15): one stacked GRU update.
            let input = infer::concat_cols(&[&x_prev, &r_prev, &a]);
            h = self.gru.infer_step(store, &input, &h);

            // Eq. (16): one stacked segment head — sparse by default,
            // computing only each row's mask-allowed columns.
            let masks: Vec<Option<infer::SparseLogMask>> = active
                .iter()
                .map(|&i| {
                    logw[i][steps[i]]
                        .as_deref()
                        .map(|entries| infer::SparseLogMask {
                            default: MASKED_OUT_LOGW,
                            entries,
                        })
                })
                .collect();
            let logp = match head {
                SegmentHead::Dense => {
                    let logits = infer::add_rowvec(&infer::matmul(&h, w_id), b_id);
                    infer::masked_log_softmax_rows(&logits, &masks)
                }
                SegmentHead::Sparse => infer::masked_matmul_cols(&h, w_id, b_id, &masks),
                SegmentHead::Quantized(q) => q.forward_masked(&h, b_id, &masks),
            };
            let preds: Vec<usize> = (0..b).map(|r| logp.argmax_row(r)).collect();
            let x_j = infer::gather_rows(seg_table, &preds);

            // Eq. (17): one stacked rate head.
            let rate_in = infer::concat_cols(&[&x_j, &h]);
            let rate = infer::sigmoid(&infer::matmul(&rate_in, w_rate));

            for (s, &i) in active.iter().enumerate() {
                out[i].push((preds[s], rate.data[s]));
                (hooks.on_step)(StepOut {
                    member: i,
                    step: steps[i],
                    segment: preds[s],
                    rate: rate.data[s],
                    logprob: logp.data[s * logp.cols + preds[s]],
                });
            }
            x_prev = x_j;
            r_prev = rate;
            for &i in &active {
                steps[i] += 1;
            }
            tick += 1;

            // Retire finished members, compacting the stacked state rows
            // (the batch shrinks; remaining rows keep their exact values —
            // gather_rows is a pure row copy).
            if active.iter().any(|&i| target_lens[i] <= steps[i]) {
                let keep: Vec<usize> = (0..b)
                    .filter(|&s| target_lens[active[s]] > steps[active[s]])
                    .collect();
                h = infer::gather_rows(&h, &keep);
                x_prev = infer::gather_rows(&x_prev, &keep);
                r_prev = infer::gather_rows(&r_prev, &keep);
                active = keep.iter().map(|&s| active[s]).collect();
            }
        }
        (out, cancelled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureExtractor;
    use rand::SeedableRng;
    use rntrajrec_roadnet::{CityConfig, RTree, SyntheticCity};
    use rntrajrec_synth::{SimConfig, Simulator};

    fn sample_input() -> (SyntheticCity, SampleInput) {
        let city = SyntheticCity::generate(CityConfig::tiny());
        let rtree = RTree::build(&city.net);
        let grid = city.net.grid(50.0);
        let fx = FeatureExtractor::new(&city.net, &rtree, grid);
        let mut sim = Simulator::new(
            &city.net,
            SimConfig {
                target_len: 9,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(5);
        let s = sim.sample(&mut rng, 8);
        let input = fx.extract(&s);
        (city, input)
    }

    fn fake_encoder_output(tape: &mut Tape, l: usize, d: usize) -> EncoderOutput {
        let mut rng = StdRng::seed_from_u64(9);
        let per_point = tape.leaf(Tensor::uniform(l, d, 0.5, &mut rng));
        let traj = tape.leaf(Tensor::uniform(1, d, 0.5, &mut rng));
        EncoderOutput { per_point, traj }
    }

    #[test]
    fn decoder_step_outputs_are_consistent() {
        let (city, input) = sample_input();
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let dec = Decoder::new(
            &mut store,
            &mut rng,
            DecoderConfig {
                dim: 16,
                num_segments: city.net.num_segments(),
                use_mask: true,
            },
        );
        let mut tape = Tape::new();
        let enc = fake_encoder_output(&mut tape, input.input_len(), 16);
        let run = dec.run(&mut tape, &store, &enc, &input, true);
        assert_eq!(run.logps.len(), input.target_len());
        assert_eq!(run.rates.len(), input.target_len());
        assert_eq!(run.preds.len(), input.target_len());
        for (&lp, &r) in run.logps.iter().zip(&run.rates) {
            assert_eq!(tape.value(lp).shape(), (1, city.net.num_segments()));
            let rate = tape.value(r).item();
            assert!((0.0..=1.0).contains(&rate));
            // Log-probs must be ≤ 0 and normalised.
            let sum: f32 = tape.value(lp).data.iter().map(|x| x.exp()).sum();
            assert!((sum - 1.0).abs() < 1e-3, "probs sum {sum}");
        }
    }

    #[test]
    fn constraint_mask_restricts_observed_steps() {
        let (city, input) = sample_input();
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let dec = Decoder::new(
            &mut store,
            &mut rng,
            DecoderConfig {
                dim: 16,
                num_segments: city.net.num_segments(),
                use_mask: true,
            },
        );
        let mut tape = Tape::new();
        let enc = fake_encoder_output(&mut tape, input.input_len(), 16);
        let run = dec.run(&mut tape, &store, &enc, &input, true);
        for (j, mask) in input.masks.iter().enumerate() {
            if let Some(entries) = mask {
                let allowed: std::collections::HashSet<usize> =
                    entries.iter().map(|&(s, _)| s).collect();
                assert!(
                    allowed.contains(&run.preds[j]),
                    "step {j}: prediction {} outside the constraint mask",
                    run.preds[j]
                );
            }
        }
    }

    #[test]
    fn without_mask_probabilities_unconstrained() {
        let (city, input) = sample_input();
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let dec = Decoder::new(
            &mut store,
            &mut rng,
            DecoderConfig {
                dim: 16,
                num_segments: city.net.num_segments(),
                use_mask: false,
            },
        );
        let mut tape = Tape::new();
        let enc = fake_encoder_output(&mut tape, input.input_len(), 16);
        let run = dec.run(&mut tape, &store, &enc, &input, true);
        // At initialisation (near-uniform logits) every segment should get
        // non-negligible probability on observed steps when unmasked.
        let lp = tape.value(run.logps[0]);
        let min = lp.data.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(
            min > MASKED_OUT_LOGW,
            "unmasked probs should not be pinned to -30"
        );
    }

    #[test]
    fn inference_mode_feeds_back_predictions() {
        let (city, input) = sample_input();
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let dec = Decoder::new(
            &mut store,
            &mut rng,
            DecoderConfig {
                dim: 16,
                num_segments: city.net.num_segments(),
                use_mask: true,
            },
        );
        let mut tape = Tape::new();
        let enc = fake_encoder_output(&mut tape, input.input_len(), 16);
        let run = dec.run(&mut tape, &store, &enc, &input, false);
        assert_eq!(run.preds.len(), input.target_len());
        // All predictions are valid segment indices.
        assert!(run.preds.iter().all(|&p| p < city.net.num_segments()));
    }

    #[test]
    fn infer_run_matches_tape_inference() {
        let (city, input) = sample_input();
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let dec = Decoder::new(
            &mut store,
            &mut rng,
            DecoderConfig {
                dim: 16,
                num_segments: city.net.num_segments(),
                use_mask: true,
            },
        );
        let mut tape = Tape::new();
        let enc = fake_encoder_output(&mut tape, input.input_len(), 16);
        let run = dec.run(&mut tape, &store, &enc, &input, false);

        let per_point = tape.value(enc.per_point).clone();
        let traj = tape.value(enc.traj).clone();
        let fast = dec.infer_run(&store, &per_point, &traj, &input);

        assert_eq!(fast.len(), run.preds.len());
        for (j, &(seg, rate)) in fast.iter().enumerate() {
            assert_eq!(seg, run.preds[j], "step {j}: segment prediction diverged");
            let tape_rate = tape.value(run.rates[j]).item();
            assert_eq!(rate, tape_rate, "step {j}: rate not bit-identical");
        }
    }

    #[test]
    fn teacher_forcing_gradients_reach_embeddings() {
        let (city, input) = sample_input();
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let dec = Decoder::new(
            &mut store,
            &mut rng,
            DecoderConfig {
                dim: 16,
                num_segments: city.net.num_segments(),
                use_mask: true,
            },
        );
        let mut tape = Tape::new();
        let enc = fake_encoder_output(&mut tape, input.input_len(), 16);
        let run = dec.run(&mut tape, &store, &enc, &input, true);
        // Simple loss: sum of selected true-class negative log-probs.
        let mut terms = Vec::new();
        for (j, &lp) in run.logps.iter().enumerate() {
            let picked = tape.select_cols(lp, input.target_segs[j], 1);
            terms.push(tape.scale(picked, -1.0));
        }
        let all = tape.concat_rows(&terms);
        let loss = tape.mean_all(all);
        store.zero_grad();
        tape.backward(loss, &mut store);
        assert!(store.grad(dec.w_id).data.iter().any(|&g| g != 0.0));
        assert!(store.grad(dec.seg_emb).data.iter().any(|&g| g != 0.0));
    }
}
