//! The multi-task decoder (Section IV-G + V), proposed in MTrajRec [11] and
//! shared by every method in the comparison ("A + Decoder", Remark 2).
//!
//! A GRU with additive attention over the encoder outputs (Eq. 14–15)
//! predicts, per target timestamp, the road segment (classification with a
//! constraint mask, Eq. 16) and the moving ratio (regression, Eq. 17).

use rand::rngs::StdRng;

use crate::attention::AdditiveAttention;
use crate::encoder::EncoderOutput;
use crate::features::SampleInput;

use crate::rnn::GruCell;
use rntrajrec_nn::{infer, Init, NodeId, ParamId, ParamStore, Tape, Tensor};

/// Log-weight assigned to segments outside the constraint mask
/// (`exp(-30) ≈ 1e-13`: effectively zero probability, numerically safe).
const MASKED_OUT_LOGW: f32 = -30.0;

/// Decoder configuration.
#[derive(Debug, Clone)]
pub struct DecoderConfig {
    pub dim: usize,
    pub num_segments: usize,
    /// Apply the constraint mask of Section V (ablation toggle).
    pub use_mask: bool,
}

/// The result of decoding one trajectory.
pub struct DecoderRun {
    /// Per-step log-probabilities over segments `[1, |V|]` (post-mask).
    pub logps: Vec<NodeId>,
    /// Per-step predicted moving ratio `[1, 1]`.
    pub rates: Vec<NodeId>,
    /// Per-step argmax segment prediction.
    pub preds: Vec<usize>,
}

/// The multi-task GRU decoder.
pub struct Decoder {
    seg_emb: ParamId,
    start_emb: ParamId,
    attn: AdditiveAttention,
    gru: GruCell,
    w_id: ParamId,
    b_id: ParamId,
    w_rate: ParamId,
    pub config: DecoderConfig,
}

impl Decoder {
    pub fn new(store: &mut ParamStore, rng: &mut StdRng, config: DecoderConfig) -> Self {
        let d = config.dim;
        Self {
            seg_emb: store.add(
                "dec.seg_emb",
                config.num_segments,
                d,
                Init::Uniform(0.1),
                rng,
            ),
            start_emb: store.add("dec.start", 1, d, Init::Uniform(0.1), rng),
            attn: AdditiveAttention::new(store, rng, "dec.attn", d),
            // Input: [x_{j-1} ∥ r_{j-1} ∥ a_j] (Eq. 15).
            gru: GruCell::new(store, rng, "dec.gru", 2 * d + 1, d),
            w_id: store.add("dec.w_id", d, config.num_segments, Init::Xavier, rng),
            b_id: store.add("dec.b_id", 1, config.num_segments, Init::Zeros, rng),
            w_rate: store.add("dec.w_rate", 2 * d, 1, Init::Xavier, rng),
            config,
        }
    }

    /// The constraint-mask log-weight row of Eq. (16): allowed segments
    /// carry `ln w`, everything else the effectively-zero
    /// [`MASKED_OUT_LOGW`]. One body shared by the tape and tape-free
    /// decode paths.
    fn mask_logw_row(&self, entries: &[(usize, f32)]) -> Tensor {
        let mut logw = vec![MASKED_OUT_LOGW; self.config.num_segments];
        for &(seg, w) in entries {
            logw[seg] = w.max(1e-6).ln();
        }
        Tensor::row(logw)
    }

    /// Decode all `l_ρ` steps. With `teacher_forcing` the ground-truth
    /// segment/rate feed the next step (training); otherwise the model's
    /// own predictions do (inference).
    pub fn run(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        enc: &EncoderOutput,
        sample: &SampleInput,
        teacher_forcing: bool,
    ) -> DecoderRun {
        self.run_scheduled(tape, store, enc, sample, |_| teacher_forcing)
    }

    /// Decode with per-step scheduled sampling: `use_truth(j)` decides
    /// whether step `j` conditions on the ground truth (true) or on the
    /// model's own prediction (false). Decaying the teacher-forcing
    /// probability over training mitigates exposure bias at small data
    /// scale (DHTR [19] trains its seq2seq the same way).
    pub fn run_scheduled(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        enc: &EncoderOutput,
        sample: &SampleInput,
        mut use_truth: impl FnMut(usize) -> bool,
    ) -> DecoderRun {
        let l_rho = sample.target_len();
        let seg_table = tape.param(store, self.seg_emb);
        let w_id = tape.param(store, self.w_id);
        let b_id = tape.param(store, self.b_id);
        let w_rate = tape.param(store, self.w_rate);

        let mut h = enc.traj;
        let mut x_prev = tape.param(store, self.start_emb);
        let mut r_prev = tape.leaf(Tensor::scalar(0.0));
        let mut logps = Vec::with_capacity(l_rho);
        let mut rates = Vec::with_capacity(l_rho);
        let mut preds = Vec::with_capacity(l_rho);

        for j in 0..l_rho {
            // Eq. (14): attention over encoder outputs.
            let a = self.attn.forward(tape, store, h, enc.per_point);
            // Eq. (15): GRU update.
            let input = tape.concat_cols(&[x_prev, r_prev, a]);
            h = self.gru.step(tape, store, input, h);

            // Road-segment head with constraint mask (Eq. 16).
            let logits = tape.matmul(h, w_id);
            let logits = tape.add_rowvec(logits, b_id);
            let masked = match (self.config.use_mask, &sample.masks[j]) {
                (true, Some(entries)) => {
                    let lw = tape.leaf(self.mask_logw_row(entries));
                    tape.add(logits, lw)
                }
                _ => logits,
            };
            let logp = tape.log_softmax_rows(masked);
            let pred = tape.value(logp).argmax_row(0);

            // Next-step conditioning (teacher forcing vs. own prediction).
            let teach = use_truth(j);
            let cond_seg = if teach { sample.target_segs[j] } else { pred };
            let x_j = tape.gather_rows(seg_table, &[cond_seg]);

            // Moving-ratio head (Eq. 17): σ([x_j ∥ h_j]·w_rate).
            let rate_in = tape.concat_cols(&[x_j, h]);
            let rate_lin = tape.matmul(rate_in, w_rate);
            let rate = tape.sigmoid(rate_lin);

            logps.push(logp);
            rates.push(rate);
            preds.push(pred);

            x_prev = x_j;
            r_prev = if teach {
                tape.leaf(Tensor::scalar(sample.target_rates[j]))
            } else {
                rate
            };
        }
        DecoderRun {
            logps,
            rates,
            preds,
        }
    }

    /// Tape-free greedy decode (the serving hot path): the twin of
    /// [`Decoder::run`] with `teacher_forcing = false`, evaluated with
    /// plain tensor ops. Returns the predicted `(segment, rate)` per
    /// target step.
    ///
    /// Every step's heavy math (the `[1,d]×[d,|V|]` segment-head matmul,
    /// the GRU and attention products) runs on `rntrajrec_nn::kernels`,
    /// which parallelises wide outputs by disjoint column ranges — the
    /// `NN_THREADS` knob cuts per-step latency without changing a bit of
    /// the output. `rntrajrec_nn::kernels::matmul_invocations` deltas
    /// around this call count the per-step matmuls (`serve_bench` records
    /// them as the baseline for fusing same-length decoder steps).
    pub fn infer_run(
        &self,
        store: &ParamStore,
        per_point: &Tensor,
        traj: &Tensor,
        sample: &SampleInput,
    ) -> Vec<(usize, f32)> {
        let l_rho = sample.target_len();
        let seg_table = store.value(self.seg_emb);
        let w_id = store.value(self.w_id);
        let b_id = store.value(self.b_id);
        let w_rate = store.value(self.w_rate);

        let mut h = traj.clone();
        let mut x_prev = store.value(self.start_emb).clone();
        let mut r_prev = Tensor::scalar(0.0);
        let mut out = Vec::with_capacity(l_rho);

        for j in 0..l_rho {
            // Eq. (14): attention over encoder outputs.
            let a = self.attn.infer(store, &h, per_point);
            // Eq. (15): GRU update.
            let input = infer::concat_cols(&[&x_prev, &r_prev, &a]);
            h = self.gru.infer_step(store, &input, &h);

            // Road-segment head with constraint mask (Eq. 16).
            let logits = infer::add_rowvec(&infer::matmul(&h, w_id), b_id);
            let masked = match (self.config.use_mask, &sample.masks[j]) {
                (true, Some(entries)) => infer::add(&logits, &self.mask_logw_row(entries)),
                _ => logits,
            };
            let logp = infer::log_softmax_rows(&masked);
            let pred = logp.argmax_row(0);

            let x_j = infer::gather_rows(seg_table, &[pred]);
            // Moving-ratio head (Eq. 17).
            let rate_in = infer::concat_cols(&[&x_j, &h]);
            let rate = infer::sigmoid(&infer::matmul(&rate_in, w_rate));
            out.push((pred, rate.item()));

            x_prev = x_j;
            r_prev = rate;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureExtractor;
    use rand::SeedableRng;
    use rntrajrec_roadnet::{CityConfig, RTree, SyntheticCity};
    use rntrajrec_synth::{SimConfig, Simulator};

    fn sample_input() -> (SyntheticCity, SampleInput) {
        let city = SyntheticCity::generate(CityConfig::tiny());
        let rtree = RTree::build(&city.net);
        let grid = city.net.grid(50.0);
        let fx = FeatureExtractor::new(&city.net, &rtree, grid);
        let mut sim = Simulator::new(
            &city.net,
            SimConfig {
                target_len: 9,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(5);
        let s = sim.sample(&mut rng, 8);
        let input = fx.extract(&s);
        (city, input)
    }

    fn fake_encoder_output(tape: &mut Tape, l: usize, d: usize) -> EncoderOutput {
        let mut rng = StdRng::seed_from_u64(9);
        let per_point = tape.leaf(Tensor::uniform(l, d, 0.5, &mut rng));
        let traj = tape.leaf(Tensor::uniform(1, d, 0.5, &mut rng));
        EncoderOutput { per_point, traj }
    }

    #[test]
    fn decoder_step_outputs_are_consistent() {
        let (city, input) = sample_input();
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let dec = Decoder::new(
            &mut store,
            &mut rng,
            DecoderConfig {
                dim: 16,
                num_segments: city.net.num_segments(),
                use_mask: true,
            },
        );
        let mut tape = Tape::new();
        let enc = fake_encoder_output(&mut tape, input.input_len(), 16);
        let run = dec.run(&mut tape, &store, &enc, &input, true);
        assert_eq!(run.logps.len(), input.target_len());
        assert_eq!(run.rates.len(), input.target_len());
        assert_eq!(run.preds.len(), input.target_len());
        for (&lp, &r) in run.logps.iter().zip(&run.rates) {
            assert_eq!(tape.value(lp).shape(), (1, city.net.num_segments()));
            let rate = tape.value(r).item();
            assert!((0.0..=1.0).contains(&rate));
            // Log-probs must be ≤ 0 and normalised.
            let sum: f32 = tape.value(lp).data.iter().map(|x| x.exp()).sum();
            assert!((sum - 1.0).abs() < 1e-3, "probs sum {sum}");
        }
    }

    #[test]
    fn constraint_mask_restricts_observed_steps() {
        let (city, input) = sample_input();
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let dec = Decoder::new(
            &mut store,
            &mut rng,
            DecoderConfig {
                dim: 16,
                num_segments: city.net.num_segments(),
                use_mask: true,
            },
        );
        let mut tape = Tape::new();
        let enc = fake_encoder_output(&mut tape, input.input_len(), 16);
        let run = dec.run(&mut tape, &store, &enc, &input, true);
        for (j, mask) in input.masks.iter().enumerate() {
            if let Some(entries) = mask {
                let allowed: std::collections::HashSet<usize> =
                    entries.iter().map(|&(s, _)| s).collect();
                assert!(
                    allowed.contains(&run.preds[j]),
                    "step {j}: prediction {} outside the constraint mask",
                    run.preds[j]
                );
            }
        }
    }

    #[test]
    fn without_mask_probabilities_unconstrained() {
        let (city, input) = sample_input();
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let dec = Decoder::new(
            &mut store,
            &mut rng,
            DecoderConfig {
                dim: 16,
                num_segments: city.net.num_segments(),
                use_mask: false,
            },
        );
        let mut tape = Tape::new();
        let enc = fake_encoder_output(&mut tape, input.input_len(), 16);
        let run = dec.run(&mut tape, &store, &enc, &input, true);
        // At initialisation (near-uniform logits) every segment should get
        // non-negligible probability on observed steps when unmasked.
        let lp = tape.value(run.logps[0]);
        let min = lp.data.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(
            min > MASKED_OUT_LOGW,
            "unmasked probs should not be pinned to -30"
        );
    }

    #[test]
    fn inference_mode_feeds_back_predictions() {
        let (city, input) = sample_input();
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let dec = Decoder::new(
            &mut store,
            &mut rng,
            DecoderConfig {
                dim: 16,
                num_segments: city.net.num_segments(),
                use_mask: true,
            },
        );
        let mut tape = Tape::new();
        let enc = fake_encoder_output(&mut tape, input.input_len(), 16);
        let run = dec.run(&mut tape, &store, &enc, &input, false);
        assert_eq!(run.preds.len(), input.target_len());
        // All predictions are valid segment indices.
        assert!(run.preds.iter().all(|&p| p < city.net.num_segments()));
    }

    #[test]
    fn infer_run_matches_tape_inference() {
        let (city, input) = sample_input();
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let dec = Decoder::new(
            &mut store,
            &mut rng,
            DecoderConfig {
                dim: 16,
                num_segments: city.net.num_segments(),
                use_mask: true,
            },
        );
        let mut tape = Tape::new();
        let enc = fake_encoder_output(&mut tape, input.input_len(), 16);
        let run = dec.run(&mut tape, &store, &enc, &input, false);

        let per_point = tape.value(enc.per_point).clone();
        let traj = tape.value(enc.traj).clone();
        let fast = dec.infer_run(&store, &per_point, &traj, &input);

        assert_eq!(fast.len(), run.preds.len());
        for (j, &(seg, rate)) in fast.iter().enumerate() {
            assert_eq!(seg, run.preds[j], "step {j}: segment prediction diverged");
            let tape_rate = tape.value(run.rates[j]).item();
            assert_eq!(rate, tape_rate, "step {j}: rate not bit-identical");
        }
    }

    #[test]
    fn teacher_forcing_gradients_reach_embeddings() {
        let (city, input) = sample_input();
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let dec = Decoder::new(
            &mut store,
            &mut rng,
            DecoderConfig {
                dim: 16,
                num_segments: city.net.num_segments(),
                use_mask: true,
            },
        );
        let mut tape = Tape::new();
        let enc = fake_encoder_output(&mut tape, input.input_len(), 16);
        let run = dec.run(&mut tape, &store, &enc, &input, true);
        // Simple loss: sum of selected true-class negative log-probs.
        let mut terms = Vec::new();
        for (j, &lp) in run.logps.iter().enumerate() {
            let picked = tape.select_cols(lp, input.target_segs[j], 1);
            terms.push(tape.scale(picked, -1.0));
        }
        let all = tape.concat_rows(&terms);
        let loss = tape.mean_all(all);
        store.zero_grad();
        tape.backward(loss, &mut store);
        assert!(store.grad(dec.w_id).data.iter().any(|&g| g != 0.0));
        assert!(store.grad(dec.seg_emb).data.iter().any(|&g| g != 0.0));
    }
}
