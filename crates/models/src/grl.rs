//! Graph Refinement Layer (Section IV-D): gated fusion + graph forward +
//! graph normalisation, with ablation switches for Table V.
//!
//! Besides the per-sample tape-free `infer` twins, every sub-module has a
//! **batched** twin operating on one stacked `[Σn, d]` feature matrix for
//! a whole micro-batch of trajectories: projections run as single stacked
//! matmuls, the GAT pass runs over a block-diagonal CSR union of every
//! point's sub-graph, and GraphNorm's statistics stay **scoped per
//! member** through `infer::segmented_norm_stats` — so batched refinement
//! is bit-identical to refining each trajectory alone, the invariant the
//! serving engine's batching contract rests on.

use std::ops::Range;
use std::sync::Arc;

use rand::rngs::StdRng;

use crate::graph_layers::GatLayer;
use crate::layers::{FeedForward, LayerNorm, Linear};
use rntrajrec_nn::{infer, GraphCsr, Init, NodeId, ParamId, ParamStore, Tape, Tensor};

/// Gated fusion (Eq. 7): adaptively mix the transformer output `tr_i`
/// (temporal) into every node of the point's sub-graph (spatial):
/// `z = σ(t̂r·W_z1 + Z·W_z2 + b_z)`, `Z̃ = z ⊙ t̂r + (1-z) ⊙ Z`.
#[derive(Debug, Clone)]
pub struct GatedFusion {
    wz1: ParamId,
    wz2: ParamId,
    bz: ParamId,
    pub dim: usize,
}

impl GatedFusion {
    pub fn new(store: &mut ParamStore, rng: &mut StdRng, name: &str, dim: usize) -> Self {
        Self {
            wz1: store.add(format!("{name}.wz1"), dim, dim, Init::Xavier, rng),
            wz2: store.add(format!("{name}.wz2"), dim, dim, Init::Xavier, rng),
            bz: store.add(format!("{name}.bz"), 1, dim, Init::Zeros, rng),
            dim,
        }
    }

    /// `tr: [1,d]` (one timestamp), `z: [n,d]` (its sub-graph nodes).
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, tr: NodeId, z: NodeId) -> NodeId {
        let n = tape.value(z).rows;
        let tr_rep = tape.repeat_rows(tr, n);
        let wz1 = tape.param(store, self.wz1);
        let wz2 = tape.param(store, self.wz2);
        let bz = tape.param(store, self.bz);
        let a = tape.matmul(tr_rep, wz1);
        let b = tape.matmul(z, wz2);
        let s = tape.add(a, b);
        let s = tape.add_rowvec(s, bz);
        let gate = tape.sigmoid(s);
        let take_tr = tape.mul(gate, tr_rep);
        let neg = tape.scale(gate, -1.0);
        let inv_gate = tape.add_const(neg, 1.0);
        let keep_z = tape.mul(inv_gate, z);
        tape.add(take_tr, keep_z)
    }

    /// Tape-free twin of [`GatedFusion::forward`].
    pub fn infer(&self, store: &ParamStore, tr: &Tensor, z: &Tensor) -> Tensor {
        let tr_rep = infer::repeat_rows(tr, z.rows);
        let a = infer::matmul(&tr_rep, store.value(self.wz1));
        let b = infer::matmul(z, store.value(self.wz2));
        let s = infer::add_rowvec(&infer::add(&a, &b), store.value(self.bz));
        let gate = infer::sigmoid(&s);
        let take_tr = infer::mul(&gate, &tr_rep);
        let inv_gate = infer::add_const(&infer::scale(&gate, -1.0), 1.0);
        let keep_z = infer::mul(&inv_gate, z);
        infer::add(&take_tr, &keep_z)
    }

    /// Batched tape-free fusion over a whole stack: `tr_points` holds one
    /// `[1, d]` transformer row per point (`[P, d]`), `z` the stacked
    /// sub-graph features `[Σn, d]`, and `row_to_point[r]` the owning
    /// point of stacked row `r`. Both weight projections run as **one**
    /// matmul each (`W_z1` over the `P` point rows, then broadcast by a
    /// pure row-gather — matmul rows are independent, so projecting before
    /// repeating is bit-identical to repeating before projecting); the
    /// gate arithmetic is element-wise, so every row matches
    /// [`GatedFusion::infer`] on the point's own sub-graph exactly.
    pub fn infer_batch(
        &self,
        store: &ParamStore,
        tr_points: &Tensor,
        z: &Tensor,
        row_to_point: &[usize],
    ) -> Tensor {
        let tr_rep = infer::gather_rows(tr_points, row_to_point);
        let a = infer::gather_rows(
            &infer::matmul(tr_points, store.value(self.wz1)),
            row_to_point,
        );
        let b = infer::matmul(z, store.value(self.wz2));
        let s = infer::add_rowvec(&infer::add(&a, &b), store.value(self.bz));
        // Fused σ(s)⊙tr + (1−σ(s))⊙z epilogue: one pass over the stack
        // instead of five (bit-identical to the composed chain).
        infer::gated_blend(&s, &tr_rep, z)
    }
}

/// Graph normalisation (Eq. 8–9): batch-norm for graph features with
/// temporal dependency. `μ_B` is the mean of the *graph-pooled* features
/// over the mini-batch; `σ_B` is the variance of all node features around
/// `μ_B`; every node feature is normalised and affinely transformed.
///
/// Statistics are differentiated exactly (they are composed from primitive
/// autograd ops), matching the training-time behaviour of batch norm.
#[derive(Debug, Clone)]
pub struct GraphNorm {
    gamma: ParamId,
    beta: ParamId,
    pub dim: usize,
    pub eps: f32,
}

impl GraphNorm {
    pub fn new(store: &mut ParamStore, rng: &mut StdRng, name: &str, dim: usize) -> Self {
        Self {
            gamma: store.add(format!("{name}.gamma"), 1, dim, Init::Ones, rng),
            beta: store.add(format!("{name}.beta"), 1, dim, Init::Zeros, rng),
            dim,
            eps: 1e-5,
        }
    }

    /// Normalise a mini-batch of sub-graph feature matrices jointly.
    /// `zs[k]` is `[n_k, d]`; returns matrices of identical shapes.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, zs: &[NodeId]) -> Vec<NodeId> {
        assert!(!zs.is_empty());
        // Eq. (8): per-graph mean pooling.
        let means: Vec<NodeId> = zs.iter().map(|&z| tape.mean_rows(z)).collect();
        let m = tape.concat_rows(&means); // [B·lτ, d]
        let mu = tape.mean_rows(m); // [1, d]
                                    // Eq. (9): variance of all node features around μ_B.
        let big = tape.concat_rows(zs); // [Σn_k, d]
        let neg_mu = tape.scale(mu, -1.0);
        let centered = tape.add_rowvec(big, neg_mu);
        let sq = tape.mul(centered, centered);
        let var = tape.mean_rows(sq); // [1, d]
        let var = tape.add_const(var, self.eps);
        let std = tape.sqrt(var);
        let inv = tape.recip(std);
        let norm = tape.mul_rowvec(centered, inv);
        let gamma = tape.param(store, self.gamma);
        let beta = tape.param(store, self.beta);
        let scaled = tape.mul_rowvec(norm, gamma);
        let out = tape.add_rowvec(scaled, beta);
        // Slice back to the per-graph shapes.
        let mut res = Vec::with_capacity(zs.len());
        let mut off = 0;
        for &z in zs {
            let n = tape.value(z).rows;
            res.push(tape.select_rows(out, off, n));
            off += n;
        }
        res
    }

    /// Tape-free twin of [`GraphNorm::forward`]. The statistics are
    /// computed over exactly the graphs passed in `zs` — the serving path
    /// passes one trajectory's sub-graphs, which matches a training batch
    /// of size 1 and keeps batched inference independent per request.
    pub fn infer(&self, store: &ParamStore, zs: &[Tensor]) -> Vec<Tensor> {
        assert!(!zs.is_empty());
        let means: Vec<Tensor> = zs.iter().map(infer::mean_rows).collect();
        let mean_refs: Vec<&Tensor> = means.iter().collect();
        let mu = infer::mean_rows(&infer::concat_rows(&mean_refs));
        let z_refs: Vec<&Tensor> = zs.iter().collect();
        let big = infer::concat_rows(&z_refs);
        let neg_mu = infer::scale(&mu, -1.0);
        let centered = infer::add_rowvec(&big, &neg_mu);
        let sq = infer::mul(&centered, &centered);
        let var = infer::add_const(&infer::mean_rows(&sq), self.eps);
        let inv = infer::recip(&infer::sqrt(&var));
        let norm = infer::mul_rowvec(&centered, &inv);
        let scaled = infer::mul_rowvec(&norm, store.value(self.gamma));
        let out = infer::add_rowvec(&scaled, store.value(self.beta));
        let mut res = Vec::with_capacity(zs.len());
        let mut off = 0;
        for z in zs {
            res.push(infer::select_rows(&out, off, z.rows));
            off += z.rows;
        }
        res
    }

    /// Batched tape-free GraphNorm over a stacked micro-batch, statistics
    /// **scoped per member**: `stacked` is `[Σn, d]`, `graph_segs[g]` the
    /// row range of sub-graph `g`, `members[m]` the range of graph indices
    /// owned by member `m`, and `row_to_member[r]` the owning member of
    /// stacked row `r`. `infer::segmented_norm_stats` computes each
    /// member's `μ`/`1/σ` exactly as [`GraphNorm::infer`] would over that
    /// member's graphs alone; the normalise-and-affine chain
    /// (`(x + (−μ))·invσ·γ + β`, one rounding per step) then runs
    /// element-wise over the whole stack — so batched output rows are
    /// bit-identical to the per-member call regardless of what else
    /// shares the batch.
    pub fn infer_segments(
        &self,
        store: &ParamStore,
        stacked: &Tensor,
        graph_segs: &[Range<usize>],
        members: &[Range<usize>],
        row_to_member: &[usize],
    ) -> Tensor {
        let (mu, inv) = infer::segmented_norm_stats(stacked, graph_segs, members, self.eps);
        // Fused normalise-and-affine pass (one traversal; bit-identical to
        // the broadcast-and-compose route).
        infer::segmented_norm_apply(
            stacked,
            &mu,
            &inv,
            row_to_member,
            store.value(self.gamma),
            store.value(self.beta),
        )
    }
}

/// Which normaliser a GRL sub-layer uses (Table V `w/o GN`).
#[derive(Debug, Clone)]
enum Norm {
    Graph(GraphNorm),
    Layer(LayerNorm),
}

impl Norm {
    fn forward(&self, tape: &mut Tape, store: &ParamStore, zs: &[NodeId]) -> Vec<NodeId> {
        match self {
            Norm::Graph(gn) => gn.forward(tape, store, zs),
            Norm::Layer(ln) => zs.iter().map(|&z| ln.forward(tape, store, z)).collect(),
        }
    }

    fn infer(&self, store: &ParamStore, zs: &[Tensor]) -> Vec<Tensor> {
        match self {
            Norm::Graph(gn) => gn.infer(store, zs),
            Norm::Layer(ln) => zs.iter().map(|z| ln.infer(store, z)).collect(),
        }
    }

    /// Batched twin over a stacked micro-batch: GraphNorm scopes its
    /// statistics per member; LayerNorm is row-local, so the stacked call
    /// is already exact.
    fn infer_batch(&self, store: &ParamStore, stacked: &Tensor, layout: &GrlBatchLayout) -> Tensor {
        match self {
            Norm::Graph(gn) => gn.infer_segments(
                store,
                stacked,
                &layout.point_segs,
                &layout.members,
                &layout.row_to_member,
            ),
            Norm::Layer(ln) => ln.infer(store, stacked),
        }
    }
}

/// Ablation switches for the graph refinement layer (Table V).
#[derive(Debug, Clone, Copy)]
pub struct GrlConfig {
    pub dim: usize,
    /// GAT layers `P` in graph forward (paper: 1).
    pub gat_layers: usize,
    pub heads: usize,
    /// `false` → `w/o GF`: concat + feed-forward instead of gated fusion.
    pub gated_fusion: bool,
    /// `false` → `w/o GAT`: feed-forward instead of graph attention.
    pub gat: bool,
    /// `false` → `w/o GN`: layer norm instead of graph norm.
    pub graph_norm: bool,
}

impl GrlConfig {
    pub fn new(dim: usize, heads: usize) -> Self {
        Self {
            dim,
            gat_layers: 1,
            heads,
            gated_fusion: true,
            gat: true,
            graph_norm: true,
        }
    }
}

/// Row/graph layout of a fused GRL micro-batch: one stacked `[Σn, d]`
/// feature matrix holding every member's per-point sub-graphs in order.
/// Built once per batch (shapes never change across GPSFormer blocks) and
/// shared by every [`GraphRefinementLayer::infer_batch`] call.
pub struct GrlBatchLayout {
    /// Row range of each point's sub-graph in the stack (one per point,
    /// members' points concatenated in order).
    pub point_segs: Vec<Range<usize>>,
    /// For each member, its range of point indices into `point_segs` —
    /// the scope of that member's GraphNorm statistics.
    pub members: Vec<Range<usize>>,
    /// Stacked row → owning point index (broadcast gathers).
    pub row_to_point: Vec<usize>,
    /// Stacked row → owning member index (normalisation broadcasts).
    pub row_to_member: Vec<usize>,
    /// Block-diagonal union of every point's sub-graph adjacency: the GAT
    /// pass runs once over the union, and because every CSR kernel reduces
    /// per destination-node segment, union results equal per-graph results
    /// bit-for-bit.
    pub union_csr: Arc<GraphCsr>,
}

impl GrlBatchLayout {
    /// Assemble the layout from each member's per-point sub-graphs
    /// (`members_graphs[m]` lists member `m`'s `(rows, csr)` per point, in
    /// point order).
    pub fn new(members_graphs: &[Vec<(usize, Arc<GraphCsr>)>]) -> Self {
        let mut point_segs = Vec::new();
        let mut members = Vec::new();
        let mut row_to_point = Vec::new();
        let mut row_to_member = Vec::new();
        let mut csrs: Vec<Arc<GraphCsr>> = Vec::new();
        let mut row = 0usize;
        for (m, graphs) in members_graphs.iter().enumerate() {
            let first_point = point_segs.len();
            for &(rows, ref csr) in graphs {
                let point = point_segs.len();
                point_segs.push(row..row + rows);
                row_to_point.extend(std::iter::repeat_n(point, rows));
                row_to_member.extend(std::iter::repeat_n(m, rows));
                csrs.push(Arc::clone(csr));
                row += rows;
            }
            members.push(first_point..point_segs.len());
        }
        let union_csr = Arc::new(GraphCsr::block_diagonal(csrs.iter().map(Arc::as_ref)));
        Self {
            point_segs,
            members,
            row_to_point,
            row_to_member,
            union_csr,
        }
    }

    /// Total stacked rows `Σn`.
    pub fn total_rows(&self) -> usize {
        self.row_to_point.len()
    }
}

/// The graph refinement layer: the spatial half of each GPSFormer block.
pub struct GraphRefinementLayer {
    fusion: Option<GatedFusion>,
    /// `w/o GF` replacement: FFN over `[tr ∥ z]`.
    fusion_ffn: Option<Linear>,
    gats: Vec<GatLayer>,
    /// `w/o GAT` replacement.
    forward_ffn: Option<FeedForward>,
    norm1: Norm,
    norm2: Norm,
    pub config: GrlConfig,
}

impl GraphRefinementLayer {
    pub fn new(store: &mut ParamStore, rng: &mut StdRng, name: &str, config: GrlConfig) -> Self {
        let d = config.dim;
        let (fusion, fusion_ffn) = if config.gated_fusion {
            (
                Some(GatedFusion::new(store, rng, &format!("{name}.gf"), d)),
                None,
            )
        } else {
            (
                None,
                Some(Linear::new(
                    store,
                    rng,
                    &format!("{name}.gf_ffn"),
                    2 * d,
                    d,
                    true,
                )),
            )
        };
        let (gats, forward_ffn) = if config.gat {
            (
                (0..config.gat_layers)
                    .map(|l| {
                        GatLayer::new(store, rng, &format!("{name}.gat{l}"), d, d, config.heads)
                    })
                    .collect(),
                None,
            )
        } else {
            (
                Vec::new(),
                Some(FeedForward::new(
                    store,
                    rng,
                    &format!("{name}.fwd_ffn"),
                    d,
                    2 * d,
                )),
            )
        };
        let mk_norm = |store: &mut ParamStore, rng: &mut StdRng, n: String| {
            if config.graph_norm {
                Norm::Graph(GraphNorm::new(store, rng, &n, d))
            } else {
                Norm::Layer(LayerNorm::new(store, rng, &n, d))
            }
        };
        let norm1 = mk_norm(store, rng, format!("{name}.norm1"));
        let norm2 = mk_norm(store, rng, format!("{name}.norm2"));
        Self {
            fusion,
            fusion_ffn,
            gats,
            forward_ffn,
            norm1,
            norm2,
            config,
        }
    }

    /// Refine a mini-batch of sub-graphs.
    ///
    /// * `tr_rows[k]`: the transformer output `[1,d]` for point `k`,
    /// * `zs[k]`: its sub-graph features `[n_k, d]`,
    /// * `csrs[k]`: its sub-graph adjacency.
    ///
    /// Returns the refined `[n_k, d]` matrices (same shapes — the module is
    /// stackable, Section II advantage iii).
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        tr_rows: &[NodeId],
        zs: &[NodeId],
        csrs: &[Arc<GraphCsr>],
    ) -> Vec<NodeId> {
        assert_eq!(tr_rows.len(), zs.len());
        assert_eq!(zs.len(), csrs.len());
        // Sub-layer 1: GraphNorm(x + GatedFusion(x)).
        let fused: Vec<NodeId> = zs
            .iter()
            .zip(tr_rows)
            .map(|(&z, &tr)| {
                let f = match (&self.fusion, &self.fusion_ffn) {
                    (Some(gf), _) => gf.forward(tape, store, tr, z),
                    (None, Some(ffn)) => {
                        let n = tape.value(z).rows;
                        let tr_rep = tape.repeat_rows(tr, n);
                        let cat = tape.concat_cols(&[tr_rep, z]);
                        let y = ffn.forward(tape, store, cat);
                        tape.relu(y)
                    }
                    _ => unreachable!(),
                };
                tape.add(z, f)
            })
            .collect();
        let x = self.norm1.forward(tape, store, &fused);

        // Sub-layer 2: GraphNorm(x + GraphForward(x)).
        let refined: Vec<NodeId> = x
            .iter()
            .zip(csrs)
            .map(|(&xi, csr)| {
                let f = if let Some(ffn) = &self.forward_ffn {
                    ffn.forward(tape, store, xi)
                } else {
                    let mut h = xi;
                    for gat in &self.gats {
                        h = gat.forward(tape, store, h, csr);
                    }
                    h
                };
                tape.add(xi, f)
            })
            .collect();
        self.norm2.forward(tape, store, &refined)
    }

    /// Tape-free twin of [`GraphRefinementLayer::forward`].
    pub fn infer(
        &self,
        store: &ParamStore,
        tr_rows: &[Tensor],
        zs: &[Tensor],
        csrs: &[Arc<GraphCsr>],
    ) -> Vec<Tensor> {
        assert_eq!(tr_rows.len(), zs.len());
        assert_eq!(zs.len(), csrs.len());
        let fused: Vec<Tensor> = zs
            .iter()
            .zip(tr_rows)
            .map(|(z, tr)| {
                let f = match (&self.fusion, &self.fusion_ffn) {
                    (Some(gf), _) => gf.infer(store, tr, z),
                    (None, Some(ffn)) => {
                        let tr_rep = infer::repeat_rows(tr, z.rows);
                        let cat = infer::concat_cols(&[&tr_rep, z]);
                        infer::relu(&ffn.infer(store, &cat))
                    }
                    _ => unreachable!(),
                };
                infer::add(z, &f)
            })
            .collect();
        let x = self.norm1.infer(store, &fused);

        let refined: Vec<Tensor> = x
            .iter()
            .zip(csrs)
            .map(|(xi, csr)| {
                let f = if let Some(ffn) = &self.forward_ffn {
                    ffn.infer(store, xi)
                } else {
                    let mut h = xi.clone();
                    for gat in &self.gats {
                        h = gat.infer(store, &h, csr);
                    }
                    h
                };
                infer::add(xi, &f)
            })
            .collect();
        self.norm2.infer(store, &refined)
    }

    /// Batched tape-free twin of [`GraphRefinementLayer::infer`] over one
    /// stacked `[Σn, d]` matrix: `tr_points` carries each point's `[1, d]`
    /// transformer row (`[P, d]`), `z` the stacked sub-graph features,
    /// `layout` the member/point scoping. Gated fusion and the FFN
    /// variants run as stacked matmuls, the GAT pass runs once over the
    /// block-diagonal CSR union, and both norms scope their statistics per
    /// member — every output row bit-identical to refining the member
    /// alone (the encoder-parity proptest pins this end to end).
    pub fn infer_batch(
        &self,
        store: &ParamStore,
        tr_points: &Tensor,
        z: &Tensor,
        layout: &GrlBatchLayout,
    ) -> Tensor {
        assert_eq!(tr_points.rows, layout.point_segs.len());
        assert_eq!(z.rows, layout.total_rows());
        // Sub-layer 1: Norm(z + Fusion(tr, z)).
        let f = match (&self.fusion, &self.fusion_ffn) {
            (Some(gf), _) => gf.infer_batch(store, tr_points, z, &layout.row_to_point),
            (None, Some(ffn)) => {
                let tr_rep = infer::gather_rows(tr_points, &layout.row_to_point);
                let cat = infer::concat_cols(&[&tr_rep, z]);
                infer::relu(&ffn.infer(store, &cat))
            }
            _ => unreachable!(),
        };
        let fused = infer::add(z, &f);
        let x = self.norm1.infer_batch(store, &fused, layout);

        // Sub-layer 2: Norm(x + GraphForward(x)).
        let f = if let Some(ffn) = &self.forward_ffn {
            ffn.infer(store, &x)
        } else {
            let mut h = x.clone();
            for gat in &self.gats {
                h = gat.infer(store, &h, &layout.union_csr);
            }
            h
        };
        let refined = infer::add(&x, &f);
        self.norm2.infer_batch(store, &refined, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rntrajrec_nn::Tensor;

    fn csr(n: usize) -> Arc<GraphCsr> {
        // Simple path graph.
        let lists: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(i - 1);
                }
                if i + 1 < n {
                    v.push(i + 1);
                }
                v
            })
            .collect();
        Arc::new(GraphCsr::from_neighbor_lists(&lists, true))
    }

    #[test]
    fn gated_fusion_blends_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let gf = GatedFusion::new(&mut store, &mut rng, "gf", 4);
        let mut tape = Tape::new();
        let tr = tape.leaf(Tensor::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]));
        let z = tape.leaf(Tensor::zeros(3, 4));
        let out = gf.forward(&mut tape, &store, tr, z);
        let v = tape.value(out);
        assert_eq!(v.shape(), (3, 4));
        // With zero bias the gate starts near 0.5: output strictly between
        // the two inputs (0 and 1).
        assert!(v.data.iter().all(|&x| x > 0.0 && x < 1.0), "{:?}", v.data);
    }

    #[test]
    fn graph_norm_standardises_the_batch() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let gn = GraphNorm::new(&mut store, &mut rng, "gn", 3);
        let mut tape = Tape::new();
        let z1 = tape.leaf(Tensor::from_vec(
            2,
            3,
            vec![10.0, -4.0, 3.0, 14.0, -8.0, 5.0],
        ));
        let z2 = tape.leaf(Tensor::from_vec(
            3,
            3,
            vec![6.0, 0.0, 1.0, 8.0, -2.0, 7.0, 12.0, -6.0, 3.0],
        ));
        let out = gn.forward(&mut tape, &store, &[z1, z2]);
        assert_eq!(out.len(), 2);
        assert_eq!(tape.value(out[0]).shape(), (2, 3));
        assert_eq!(tape.value(out[1]).shape(), (3, 3));
        // Concatenated output: near-zero variance shift (gamma=1, beta=0 at
        // init) — check each column has ~unit std around the pooled mean.
        let all: Vec<f32> = tape
            .value(out[0])
            .data
            .iter()
            .chain(&tape.value(out[1]).data)
            .copied()
            .collect();
        for c in 0..3 {
            let col: Vec<f32> = all.iter().skip(c).step_by(3).copied().collect();
            let var: f32 = col.iter().map(|x| x * x).sum::<f32>() / col.len() as f32;
            assert!((0.3..3.0).contains(&var), "col {c} var {var}");
        }
    }

    #[test]
    fn grl_preserves_shapes_all_variants() {
        for (gf, gat, gn) in [
            (true, true, true),
            (false, true, true),
            (true, false, true),
            (true, true, false),
        ] {
            let mut rng = StdRng::seed_from_u64(3);
            let mut store = ParamStore::new();
            let cfg = GrlConfig {
                dim: 8,
                gat_layers: 1,
                heads: 2,
                gated_fusion: gf,
                gat,
                graph_norm: gn,
            };
            let grl = GraphRefinementLayer::new(&mut store, &mut rng, "grl", cfg);
            let mut tape = Tape::new();
            let tr1 = tape.leaf(Tensor::uniform(1, 8, 1.0, &mut rng));
            let tr2 = tape.leaf(Tensor::uniform(1, 8, 1.0, &mut rng));
            let z1 = tape.leaf(Tensor::uniform(4, 8, 1.0, &mut rng));
            let z2 = tape.leaf(Tensor::uniform(2, 8, 1.0, &mut rng));
            let out = grl.forward(&mut tape, &store, &[tr1, tr2], &[z1, z2], &[csr(4), csr(2)]);
            assert_eq!(
                tape.value(out[0]).shape(),
                (4, 8),
                "variant {gf}/{gat}/{gn}"
            );
            assert_eq!(tape.value(out[1]).shape(), (2, 8));
            assert!(tape.value(out[0]).all_finite());
        }
    }

    #[test]
    fn grl_is_stackable() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let cfg = GrlConfig::new(8, 2);
        let a = GraphRefinementLayer::new(&mut store, &mut rng, "a", cfg);
        let b = GraphRefinementLayer::new(&mut store, &mut rng, "b", cfg);
        let mut tape = Tape::new();
        let tr = tape.leaf(Tensor::uniform(1, 8, 1.0, &mut rng));
        let z = tape.leaf(Tensor::uniform(3, 8, 1.0, &mut rng));
        let c = csr(3);
        let out1 = a.forward(&mut tape, &store, &[tr], &[z], std::slice::from_ref(&c));
        let out2 = b.forward(&mut tape, &store, &[tr], &[out1[0]], &[c]);
        assert_eq!(tape.value(out2[0]).shape(), (3, 8));
    }

    #[test]
    fn grl_gradients_reach_fusion_params() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let cfg = GrlConfig::new(8, 2);
        let grl = GraphRefinementLayer::new(&mut store, &mut rng, "g", cfg);
        let mut tape = Tape::new();
        let tr = tape.leaf(Tensor::uniform(1, 8, 1.0, &mut rng));
        let z = tape.leaf(Tensor::uniform(3, 8, 1.0, &mut rng));
        let out = grl.forward(&mut tape, &store, &[tr], &[z], &[csr(3)]);
        let loss = tape.mean_all(out[0]);
        store.zero_grad();
        tape.backward(loss, &mut store);
        let gf = grl.fusion.as_ref().unwrap();
        assert!(store.grad(gf.wz1).data.iter().any(|&g| g != 0.0));
        assert!(store.grad(gf.wz2).data.iter().any(|&g| g != 0.0));
    }
}
