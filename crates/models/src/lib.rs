//! Neural modules for the RNTrajRec reproduction.
//!
//! Built on the `rntrajrec-nn` autograd engine, this crate implements every
//! learned component of the paper plus the baseline encoders:
//!
//! * [`layers`] — Linear, LayerNorm, FeedForward.
//! * [`rnn`] — the GRU cell of Eq. (1), LSTM, BiLSTM.
//! * [`attention`] — multi-head self-attention (Eq. 10), positional
//!   encoding (Eq. 12), additive decoder attention (Eq. 14).
//! * [`transformer`] — the transformer encoder layer (Section IV-E).
//! * [`graph_layers`] — GAT (Eq. 3–4), GCN, GIN (Fig. 7(a) backbones).
//! * [`gridgnn`] — GridGNN road-network representation (Section IV-B).
//! * [`features`] — Sub-Graph Generation (Section IV-C), constraint masks
//!   (Section V) and all precomputed per-sample features.
//! * [`grl`] — gated fusion, graph norm, Graph Refinement Layer
//!   (Section IV-D) with Table V ablation switches.
//! * [`gpsformer`] — GPSFormer and the complete RNTrajRec encoder
//!   (Section IV-F) incl. the graph classification loss (Eq. 18).
//! * [`decoder`] — the multi-task decoder with constraint mask
//!   (Sections IV-G and V).
//! * [`baselines`] — MTrajRec, Transformer, t2vec, NeuTraj, T3S, GTS
//!   encoders and DHTR's seq2seq interpolator (Section VI-A4).

pub mod attention;
pub mod baselines;
pub mod decoder;
pub mod encoder;
pub mod features;
pub mod gpsformer;
pub mod graph_layers;
pub mod gridgnn;
pub mod grl;
pub mod layers;
pub mod rnn;
pub mod transformer;

pub use attention::{AdditiveAttention, MultiHeadAttention, PositionalEncoding};
pub use baselines::{
    DhtrSeq2Seq, GtsEncoder, MTrajRecEncoder, NeuTrajEncoder, T2vecEncoder, T3sEncoder,
    TransformerBaseline,
};
pub use decoder::{
    BatchMember, DecodeHooks, Decoder, DecoderConfig, DecoderRun, GrownMember, SegmentHead, StepOut,
};
pub use encoder::{BatchEncoderOutput, EncoderOutput, InferOutput, TrajEncoder};
pub use features::{FeatureExtractor, QueryError, SampleInput, SubGraph};
pub use gpsformer::{RnTrajRecConfig, RnTrajRecEncoder};
pub use graph_layers::{GatLayer, GcnLayer, GinLayer};
pub use gridgnn::{GnnBackbone, GridGnn, GridGnnConfig};
pub use grl::{GatedFusion, GraphNorm, GraphRefinementLayer, GrlBatchLayout, GrlConfig};
pub use layers::{FeedForward, LayerNorm, Linear};
pub use rnn::{BiLstm, GruCell, LstmCell};
pub use transformer::TransformerEncoderLayer;
