//! Recurrent cells: GRU (Eq. 1) and LSTM, plus sequence runners.

use rand::rngs::StdRng;

use rntrajrec_nn::{infer, Init, NodeId, ParamId, ParamStore, Tape, Tensor};

/// Gated recurrent unit cell exactly as the paper's Eq. (1):
/// `z = σ(W_z·[s,x]+b_z)`, `r = σ(W_r·[s,x]+b_r)`,
/// `c = tanh(W_c·[r⊙s, x]+b_c)`, `s' = (1-z)⊙s + z⊙c`.
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: ParamId,
    wr: ParamId,
    wc: ParamId,
    bz: ParamId,
    br: ParamId,
    bc: ParamId,
    pub in_dim: usize,
    pub hidden: usize,
}

impl GruCell {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        let cat = in_dim + hidden;
        Self {
            wz: store.add(format!("{name}.wz"), cat, hidden, Init::Xavier, rng),
            wr: store.add(format!("{name}.wr"), cat, hidden, Init::Xavier, rng),
            wc: store.add(format!("{name}.wc"), cat, hidden, Init::Xavier, rng),
            bz: store.add(format!("{name}.bz"), 1, hidden, Init::Zeros, rng),
            br: store.add(format!("{name}.br"), 1, hidden, Init::Zeros, rng),
            bc: store.add(format!("{name}.bc"), 1, hidden, Init::Zeros, rng),
            in_dim,
            hidden,
        }
    }

    /// One step: `x [B,in]`, `s [B,hidden]` → `s' [B,hidden]`.
    pub fn step(&self, tape: &mut Tape, store: &ParamStore, x: NodeId, s: NodeId) -> NodeId {
        let cat = tape.concat_cols(&[s, x]);
        let wz = tape.param(store, self.wz);
        let bz = tape.param(store, self.bz);
        let z_lin = tape.matmul(cat, wz);
        let z_lin = tape.add_rowvec(z_lin, bz);
        let z = tape.sigmoid(z_lin);

        let wr = tape.param(store, self.wr);
        let br = tape.param(store, self.br);
        let r_lin = tape.matmul(cat, wr);
        let r_lin = tape.add_rowvec(r_lin, br);
        let r = tape.sigmoid(r_lin);

        let rs = tape.mul(r, s);
        let cat2 = tape.concat_cols(&[rs, x]);
        let wc = tape.param(store, self.wc);
        let bc = tape.param(store, self.bc);
        let c_lin = tape.matmul(cat2, wc);
        let c_lin = tape.add_rowvec(c_lin, bc);
        let c = tape.tanh(c_lin);

        let neg_z = tape.scale(z, -1.0);
        let one_minus_z = tape.add_const(neg_z, 1.0);
        let keep = tape.mul(one_minus_z, s);
        let update = tape.mul(z, c);
        tape.add(keep, update)
    }

    /// Tape-free twin of [`GruCell::step`].
    pub fn infer_step(&self, store: &ParamStore, x: &Tensor, s: &Tensor) -> Tensor {
        let cat = infer::concat_cols(&[s, x]);
        let z_lin = infer::add_rowvec(
            &infer::matmul(&cat, store.value(self.wz)),
            store.value(self.bz),
        );
        let z = infer::sigmoid(&z_lin);
        let r_lin = infer::add_rowvec(
            &infer::matmul(&cat, store.value(self.wr)),
            store.value(self.br),
        );
        let r = infer::sigmoid(&r_lin);
        let rs = infer::mul(&r, s);
        let cat2 = infer::concat_cols(&[&rs, x]);
        let c_lin = infer::add_rowvec(
            &infer::matmul(&cat2, store.value(self.wc)),
            store.value(self.bc),
        );
        let c = infer::tanh(&c_lin);
        let one_minus_z = infer::add_const(&infer::scale(&z, -1.0), 1.0);
        let keep = infer::mul(&one_minus_z, s);
        let update = infer::mul(&z, &c);
        infer::add(&keep, &update)
    }

    /// Run over a sequence `[L, in]` with zero initial state; returns the
    /// stacked hidden states `[L, hidden]`.
    pub fn run_sequence(&self, tape: &mut Tape, store: &ParamStore, xs: NodeId) -> NodeId {
        let len = tape.value(xs).rows;
        let mut s = tape.leaf(Tensor::zeros(1, self.hidden));
        let mut outs = Vec::with_capacity(len);
        for i in 0..len {
            let x = tape.select_rows(xs, i, 1);
            s = self.step(tape, store, x, s);
            outs.push(s);
        }
        tape.concat_rows(&outs)
    }
}

/// LSTM cell (used by the t2vec / T3S / NeuTraj baseline encoders).
#[derive(Debug, Clone)]
pub struct LstmCell {
    wi: ParamId,
    wf: ParamId,
    wo: ParamId,
    wg: ParamId,
    bi: ParamId,
    bf: ParamId,
    bo: ParamId,
    bg: ParamId,
    pub in_dim: usize,
    pub hidden: usize,
}

impl LstmCell {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        let cat = in_dim + hidden;
        Self {
            wi: store.add(format!("{name}.wi"), cat, hidden, Init::Xavier, rng),
            wf: store.add(format!("{name}.wf"), cat, hidden, Init::Xavier, rng),
            wo: store.add(format!("{name}.wo"), cat, hidden, Init::Xavier, rng),
            wg: store.add(format!("{name}.wg"), cat, hidden, Init::Xavier, rng),
            bi: store.add(format!("{name}.bi"), 1, hidden, Init::Zeros, rng),
            // Forget-gate bias of 1 — standard LSTM initialisation.
            bf: store.add(format!("{name}.bf"), 1, hidden, Init::Ones, rng),
            bo: store.add(format!("{name}.bo"), 1, hidden, Init::Zeros, rng),
            bg: store.add(format!("{name}.bg"), 1, hidden, Init::Zeros, rng),
            in_dim,
            hidden,
        }
    }

    fn gate(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        cat: NodeId,
        w: ParamId,
        b: ParamId,
    ) -> NodeId {
        let w = tape.param(store, w);
        let b = tape.param(store, b);
        let lin = tape.matmul(cat, w);
        tape.add_rowvec(lin, b)
    }

    /// One step: returns `(h', c')`.
    pub fn step(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: NodeId,
        h: NodeId,
        c: NodeId,
    ) -> (NodeId, NodeId) {
        let cat = tape.concat_cols(&[h, x]);
        let i_lin = self.gate(tape, store, cat, self.wi, self.bi);
        let i = tape.sigmoid(i_lin);
        let f_lin = self.gate(tape, store, cat, self.wf, self.bf);
        let f = tape.sigmoid(f_lin);
        let o_lin = self.gate(tape, store, cat, self.wo, self.bo);
        let o = tape.sigmoid(o_lin);
        let g_lin = self.gate(tape, store, cat, self.wg, self.bg);
        let g = tape.tanh(g_lin);
        let fc = tape.mul(f, c);
        let ig = tape.mul(i, g);
        let c_new = tape.add(fc, ig);
        let c_t = tape.tanh(c_new);
        let h_new = tape.mul(o, c_t);
        (h_new, c_new)
    }

    /// Run over `[L, in]`, zero init; returns stacked `[L, hidden]`.
    pub fn run_sequence(&self, tape: &mut Tape, store: &ParamStore, xs: NodeId) -> NodeId {
        let len = tape.value(xs).rows;
        let mut h = tape.leaf(Tensor::zeros(1, self.hidden));
        let mut c = tape.leaf(Tensor::zeros(1, self.hidden));
        let mut outs = Vec::with_capacity(len);
        for i in 0..len {
            let x = tape.select_rows(xs, i, 1);
            let (h2, c2) = self.step(tape, store, x, h, c);
            h = h2;
            c = c2;
            outs.push(h);
        }
        tape.concat_rows(&outs)
    }
}

/// Bidirectional LSTM: forward + backward passes concatenated and projected
/// back to `hidden` (the t2vec encoder architecture).
#[derive(Debug, Clone)]
pub struct BiLstm {
    pub fwd: LstmCell,
    pub bwd: LstmCell,
    pub proj: crate::layers::Linear,
}

impl BiLstm {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        Self {
            fwd: LstmCell::new(store, rng, &format!("{name}.fwd"), in_dim, hidden),
            bwd: LstmCell::new(store, rng, &format!("{name}.bwd"), in_dim, hidden),
            proj: crate::layers::Linear::new(
                store,
                rng,
                &format!("{name}.proj"),
                2 * hidden,
                hidden,
                true,
            ),
        }
    }

    pub fn run_sequence(&self, tape: &mut Tape, store: &ParamStore, xs: NodeId) -> NodeId {
        let len = tape.value(xs).rows;
        let f = self.fwd.run_sequence(tape, store, xs);
        // Reverse the sequence for the backward pass.
        let rev_rows: Vec<NodeId> = (0..len).rev().map(|i| tape.select_rows(xs, i, 1)).collect();
        let xs_rev = tape.concat_rows(&rev_rows);
        let b_rev = self.bwd.run_sequence(tape, store, xs_rev);
        let b_rows: Vec<NodeId> = (0..len)
            .rev()
            .map(|i| tape.select_rows(b_rev, i, 1))
            .collect();
        let b = tape.concat_rows(&b_rows);
        let cat = tape.concat_cols(&[f, b]);
        self.proj.forward(tape, store, cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rntrajrec_nn::Adam;

    #[test]
    fn gru_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, &mut rng, "g", 3, 5);
        let mut tape = Tape::new();
        let xs = tape.leaf(Tensor::zeros(7, 3));
        let hs = gru.run_sequence(&mut tape, &store, xs);
        assert_eq!(tape.value(hs).shape(), (7, 5));
    }

    #[test]
    fn gru_zero_input_zero_state_stays_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, &mut rng, "g", 2, 4);
        let mut tape = Tape::new();
        let xs = tape.leaf(Tensor::zeros(20, 2));
        let hs = gru.run_sequence(&mut tape, &store, xs);
        assert!(tape.value(hs).data.iter().all(|&h| h.abs() <= 1.0));
    }

    #[test]
    fn gru_learns_to_memorise_first_input() {
        // Task: output at final step = first input value; requires memory.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, &mut rng, "g", 1, 8);
        let head = crate::layers::Linear::new(&mut store, &mut rng, "h", 8, 1, true);
        let mut opt = Adam::new(0.02);
        let seqs: Vec<(Vec<f32>, f32)> = vec![
            (vec![1.0, 0.0, 0.0, 0.0], 1.0),
            (vec![-1.0, 0.0, 0.0, 0.0], -1.0),
            (vec![0.5, 0.0, 0.0, 0.0], 0.5),
            (vec![-0.5, 0.0, 0.0, 0.0], -0.5),
        ];
        let mut last_loss = f32::INFINITY;
        for epoch in 0..150 {
            let mut tape = Tape::new();
            let mut losses = Vec::new();
            for (xs, target) in &seqs {
                let x = tape.leaf(Tensor::from_vec(4, 1, xs.clone()));
                let hs = gru.run_sequence(&mut tape, &store, x);
                let hl = tape.select_rows(hs, 3, 1);
                let y = head.forward(&mut tape, &store, hl);
                let t = tape.leaf(Tensor::scalar(*target));
                let d = tape.sub(y, t);
                let sq = tape.mul(d, d);
                losses.push(sq);
            }
            let all = tape.concat_rows(&losses);
            let loss = tape.mean_all(all);
            last_loss = tape.value(loss).item();
            store.zero_grad();
            tape.backward(loss, &mut store);
            opt.step(&mut store);
            if epoch == 0 {
                assert!(last_loss > 0.05, "task should not be trivial at init");
            }
        }
        assert!(last_loss < 0.02, "GRU failed to memorise: loss {last_loss}");
    }

    #[test]
    fn lstm_shapes_and_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let lstm = LstmCell::new(&mut store, &mut rng, "l", 3, 6);
        let mut tape = Tape::new();
        let xs = tape.leaf(Tensor::uniform(10, 3, 1.0, &mut rng));
        let hs = lstm.run_sequence(&mut tape, &store, xs);
        assert_eq!(tape.value(hs).shape(), (10, 6));
        assert!(tape.value(hs).data.iter().all(|&h| h.abs() <= 1.0));
    }

    #[test]
    fn bilstm_output_depends_on_future() {
        // The first output row of a BiLSTM must change when the *last*
        // input changes (unidirectional RNN would not).
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let bi = BiLstm::new(&mut store, &mut rng, "b", 2, 4);
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(3, 2, vec![0.1, 0.2, 0.0, 0.0, 0.9, -0.3]));
        let b = tape.leaf(Tensor::from_vec(3, 2, vec![0.1, 0.2, 0.0, 0.0, -0.9, 0.3]));
        let ha = bi.run_sequence(&mut tape, &store, a);
        let hb = bi.run_sequence(&mut tape, &store, b);
        let first_a = tape.value(ha).row_slice(0).to_vec();
        let first_b = tape.value(hb).row_slice(0).to_vec();
        assert_ne!(first_a, first_b);
    }
}
