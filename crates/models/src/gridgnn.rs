//! GridGNN — grid-partitioned road-network representation (Section IV-B).
//!
//! Each road segment is a sequence of 50 m grid cells; a GRU folds the grid
//! embeddings into a segment vector (Eq. 1), which is added to a learned
//! segment-ID embedding (Eq. 2) and refined by `M` GAT layers over the road
//! graph (Eq. 3–4); finally static features are concatenated and projected
//! (end of Section IV-B). Produces `X_road ∈ R^{|V|×d}`.

use std::sync::Arc;

use rand::rngs::StdRng;

use crate::graph_layers::{GatLayer, GcnLayer, GinLayer};
use crate::layers::Linear;
use crate::rnn::GruCell;
use rntrajrec_geo::GridSpec;
use rntrajrec_nn::{infer, GraphCsr, Init, NodeId, ParamId, ParamStore, Tape, Tensor};
use rntrajrec_roadnet::{RoadNetwork, NUM_ROAD_LEVELS};

/// Graph backbone selector for the Fig. 7(a) comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GnnBackbone {
    Gat,
    Gcn,
    Gin,
}

enum BackboneLayers {
    Gat(Vec<GatLayer>),
    Gcn(Vec<GcnLayer>),
    Gin(Vec<GinLayer>),
}

/// Configuration of the road-network representation module.
#[derive(Debug, Clone)]
pub struct GridGnnConfig {
    pub dim: usize,
    /// Number of stacked graph layers `M` (paper: 2).
    pub layers: usize,
    /// Attention heads `h` (paper: 8; must divide `dim`).
    pub heads: usize,
    pub backbone: GnnBackbone,
    /// `false` → skip the grid-GRU of Eq. (1)–(2): the plain GCN/GIN/GAT
    /// comparison of Fig. 7(a) ("GridGNN consistently performs the best,
    /// which shows the effectiveness of integrating grid information").
    pub use_grid: bool,
}

impl Default for GridGnnConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            layers: 2,
            heads: 4,
            backbone: GnnBackbone::Gat,
            use_grid: true,
        }
    }
}

/// The GridGNN module bound to one road network.
pub struct GridGnn {
    grid_emb: ParamId,
    road_emb: ParamId,
    gru: GruCell,
    backbone: BackboneLayers,
    out: Linear,
    /// Flat grid-cell index sequences per segment.
    grid_seqs: Vec<Vec<usize>>,
    /// Segments grouped by sequence length (for batched GRU steps).
    length_groups: Vec<Vec<usize>>,
    /// Row permutation restoring original segment order after grouping.
    perm: Vec<usize>,
    /// Full road-graph adjacency (undirected + self loops).
    csr: Arc<GraphCsr>,
    /// Constant static features `f_road_s` `[|V|, 11]`.
    static_feats: Tensor,
    pub config: GridGnnConfig,
}

impl GridGnn {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        net: &RoadNetwork,
        grid: &GridSpec,
        config: GridGnnConfig,
    ) -> Self {
        let d = config.dim;
        let n = net.num_segments();
        let grid_emb = store.add(
            "gridgnn.grid_emb",
            grid.num_cells(),
            d,
            Init::Uniform(0.1),
            rng,
        );
        let road_emb = store.add("gridgnn.road_emb", n, d, Init::Uniform(0.1), rng);
        let gru = GruCell::new(store, rng, "gridgnn.gru", d, d);
        let backbone = match config.backbone {
            GnnBackbone::Gat => BackboneLayers::Gat(
                (0..config.layers)
                    .map(|l| {
                        GatLayer::new(store, rng, &format!("gridgnn.gat{l}"), d, d, config.heads)
                    })
                    .collect(),
            ),
            GnnBackbone::Gcn => BackboneLayers::Gcn(
                (0..config.layers)
                    .map(|l| GcnLayer::new(store, rng, &format!("gridgnn.gcn{l}"), d, d))
                    .collect(),
            ),
            GnnBackbone::Gin => BackboneLayers::Gin(
                (0..config.layers)
                    .map(|l| GinLayer::new(store, rng, &format!("gridgnn.gin{l}"), d, d))
                    .collect(),
            ),
        };
        let out = Linear::new(store, rng, "gridgnn.out", d + NUM_ROAD_LEVELS + 3, d, true);

        let grid_seqs: Vec<Vec<usize>> = net
            .grid_sequences(grid)
            .into_iter()
            .map(|seq| seq.into_iter().map(|c| grid.flat_index(c)).collect())
            .collect();
        // Group segments by grid-sequence length so GRU steps batch.
        let max_len = grid_seqs.iter().map(Vec::len).max().unwrap_or(1);
        let mut length_groups: Vec<Vec<usize>> = vec![Vec::new(); max_len + 1];
        for (i, s) in grid_seqs.iter().enumerate() {
            length_groups[s.len()].push(i);
        }
        length_groups.retain(|g| !g.is_empty());
        let mut perm = vec![0usize; n];
        let mut row = 0;
        for g in &length_groups {
            for &seg in g {
                perm[seg] = row;
                row += 1;
            }
        }

        let lists: Vec<Vec<usize>> = net
            .segment_ids()
            .map(|id| {
                net.neighbors_undirected(id)
                    .iter()
                    .map(|s| s.index())
                    .collect()
            })
            .collect();
        let csr = Arc::new(GraphCsr::from_neighbor_lists(&lists, true));

        let mut static_feats = Tensor::zeros(n, NUM_ROAD_LEVELS + 3);
        for id in net.segment_ids() {
            let f = net.static_features(id);
            for (c, v) in f.iter().enumerate() {
                static_feats.set(id.index(), c, *v);
            }
        }

        Self {
            grid_emb,
            road_emb,
            gru,
            backbone,
            out,
            grid_seqs,
            length_groups,
            perm,
            csr,
            static_feats,
            config,
        }
    }

    /// Compute `X_road` `[|V|, d]`. Run once per mini-batch (the paper
    /// notes the representation is input-independent and can be computed in
    /// advance at inference time).
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore) -> NodeId {
        let road = tape.param(store, self.road_emb);
        let mut x = if self.config.use_grid {
            let grid_table = tape.param(store, self.grid_emb);
            // Batched GRU over grid sequences, grouped by length.
            let mut group_outputs = Vec::with_capacity(self.length_groups.len());
            for group in &self.length_groups {
                let len = self.grid_seqs[group[0]].len();
                let mut state = tape.leaf(Tensor::zeros(group.len(), self.config.dim));
                for t in 0..len {
                    let idx: Vec<usize> = group.iter().map(|&seg| self.grid_seqs[seg][t]).collect();
                    let x = tape.gather_rows(grid_table, &idx);
                    state = self.gru.step(tape, store, x, state);
                }
                group_outputs.push(state);
            }
            let stacked = tape.concat_rows(&group_outputs);
            let grid_repr = tape.gather_rows(stacked, &self.perm); // original order
                                                                   // Eq. (2): r⁰ = ReLU(s^{(φ)} + σ_road).
            let sum = tape.add(grid_repr, road);
            tape.relu(sum)
        } else {
            // Fig. 7(a) plain-GNN comparison: ID embeddings only.
            tape.relu(road)
        };

        // Eq. (3)–(4): M graph layers.
        match &self.backbone {
            BackboneLayers::Gat(layers) => {
                for l in layers {
                    x = l.forward(tape, store, x, &self.csr);
                }
            }
            BackboneLayers::Gcn(layers) => {
                for l in layers {
                    x = l.forward(tape, store, x, &self.csr);
                }
            }
            BackboneLayers::Gin(layers) => {
                for l in layers {
                    x = l.forward(tape, store, x, &self.csr);
                }
            }
        }

        // Static features + linear projection.
        let stat = tape.leaf(self.static_feats.clone());
        let cat = tape.concat_cols(&[x, stat]);
        self.out.forward(tape, store, cat)
    }

    /// Tape-free twin of [`GridGnn::forward`]: compute `X_road` once from
    /// the current weights. The result is input-independent (the paper
    /// notes it can be computed in advance at inference time), so serving
    /// precomputes it per road network and shares it read-only across
    /// worker threads — see `rntrajrec-serve`'s road-embedding cache.
    ///
    /// The precompute is parallel by node ranges: the grouped-GRU matmuls
    /// partition by segment rows, the GAT layers by destination-node CSR
    /// segments, and the final projection by road rows — all through
    /// `rntrajrec_nn::kernels`, bit-identical at any `NN_THREADS`.
    pub fn infer(&self, store: &ParamStore) -> Tensor {
        let road = store.value(self.road_emb);
        let mut x = if self.config.use_grid {
            let grid_table = store.value(self.grid_emb);
            let mut group_outputs = Vec::with_capacity(self.length_groups.len());
            for group in &self.length_groups {
                let len = self.grid_seqs[group[0]].len();
                let mut state = Tensor::zeros(group.len(), self.config.dim);
                for t in 0..len {
                    let idx: Vec<usize> = group.iter().map(|&seg| self.grid_seqs[seg][t]).collect();
                    let x = infer::gather_rows(grid_table, &idx);
                    state = self.gru.infer_step(store, &x, &state);
                }
                group_outputs.push(state);
            }
            let refs: Vec<&Tensor> = group_outputs.iter().collect();
            let stacked = infer::concat_rows(&refs);
            let grid_repr = infer::gather_rows(&stacked, &self.perm);
            infer::relu(&infer::add(&grid_repr, road))
        } else {
            infer::relu(road)
        };

        match &self.backbone {
            BackboneLayers::Gat(layers) => {
                for l in layers {
                    x = l.infer(store, &x, &self.csr);
                }
            }
            BackboneLayers::Gcn(layers) => {
                for l in layers {
                    x = l.infer(store, &x, &self.csr);
                }
            }
            BackboneLayers::Gin(layers) => {
                for l in layers {
                    x = l.infer(store, &x, &self.csr);
                }
            }
        }

        let cat = infer::concat_cols(&[&x, &self.static_feats]);
        self.out.infer(store, &cat)
    }

    pub fn full_csr(&self) -> &Arc<GraphCsr> {
        &self.csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rntrajrec_nn::Adam;
    use rntrajrec_roadnet::{CityConfig, SyntheticCity};

    fn setup(backbone: GnnBackbone) -> (SyntheticCity, ParamStore, GridGnn) {
        let city = SyntheticCity::generate(CityConfig::tiny());
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let grid = city.net.grid(50.0);
        let cfg = GridGnnConfig {
            dim: 16,
            layers: 2,
            heads: 2,
            backbone,
            use_grid: true,
        };
        let gg = GridGnn::new(&mut store, &mut rng, &city.net, &grid, cfg);
        (city, store, gg)
    }

    #[test]
    fn forward_shape_matches_network() {
        let (city, store, gg) = setup(GnnBackbone::Gat);
        let mut tape = Tape::new();
        let x = gg.forward(&mut tape, &store);
        assert_eq!(tape.value(x).shape(), (city.net.num_segments(), 16));
        assert!(tape.value(x).all_finite());
    }

    #[test]
    fn all_backbones_run() {
        for b in [GnnBackbone::Gat, GnnBackbone::Gcn, GnnBackbone::Gin] {
            let (city, store, gg) = setup(b);
            let mut tape = Tape::new();
            let x = gg.forward(&mut tape, &store);
            assert_eq!(tape.value(x).rows, city.net.num_segments());
        }
    }

    #[test]
    fn permutation_restores_segment_order() {
        let (_, store, gg) = setup(GnnBackbone::Gat);
        // The permutation must be a bijection.
        let mut seen = vec![false; gg.perm.len()];
        for &p in &gg.perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let _ = store;
    }

    #[test]
    fn representation_is_trainable() {
        // Fit a scalar head to distinguish segment 0 from segment 1:
        // gradients must reach the grid and road embedding tables.
        let (_, mut store, gg) = setup(GnnBackbone::Gat);
        let mut rng = StdRng::seed_from_u64(2);
        let head = Linear::new(&mut store, &mut rng, "head", 16, 1, true);
        let mut opt = Adam::new(0.02);
        let mut last = f32::INFINITY;
        for _ in 0..30 {
            let mut tape = Tape::new();
            let x = gg.forward(&mut tape, &store);
            let y = head.forward(&mut tape, &store, x);
            let s0 = tape.select_rows(y, 0, 1);
            let s1 = tape.select_rows(y, 1, 1);
            // loss = (s0 - 1)² + (s1 + 1)²
            let t0 = tape.add_const(s0, -1.0);
            let t1 = tape.add_const(s1, 1.0);
            let q0 = tape.mul(t0, t0);
            let q1 = tape.mul(t1, t1);
            let l = tape.add(q0, q1);
            let loss = tape.mean_all(l);
            last = tape.value(loss).item();
            store.zero_grad();
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!(last < 0.1, "GridGNN head failed to fit: {last}");
    }

    #[test]
    fn infer_matches_tape_forward() {
        for b in [GnnBackbone::Gat, GnnBackbone::Gcn, GnnBackbone::Gin] {
            let (_, store, gg) = setup(b);
            let mut tape = Tape::new();
            let x = gg.forward(&mut tape, &store);
            let fast = gg.infer(&store);
            assert_eq!(fast.shape(), tape.value(x).shape());
            assert_eq!(
                fast.data,
                tape.value(x).data,
                "{b:?}: infer not bit-identical"
            );
        }
    }

    #[test]
    fn grid_embedding_receives_gradient() {
        let (_, mut store, gg) = setup(GnnBackbone::Gat);
        let mut tape = Tape::new();
        let x = gg.forward(&mut tape, &store);
        let loss = tape.mean_all(x);
        store.zero_grad();
        tape.backward(loss, &mut store);
        let g = store.grad(gg.grid_emb);
        assert!(
            g.data.iter().any(|&v| v != 0.0),
            "grid embedding got no gradient"
        );
        let g = store.grad(gg.road_emb);
        assert!(
            g.data.iter().any(|&v| v != 0.0),
            "road embedding got no gradient"
        );
    }
}
