//! GPSFormer (Section IV-F) and the complete RNTrajRec encoder.
//!
//! All numeric work in both the tape `encode` and the tape-free
//! `infer_sample` paths (attention products, FFNs, pooling, GRL graph
//! ops) executes on `rntrajrec_nn::kernels`, the workspace's single
//! parallel compute core — see `nn`'s crate docs for the determinism
//! contract.
//!
//! Per mini-batch: GridGNN produces `X_road`; the Sub-Graph Generation
//! features (precomputed in [`crate::features`]) select and weight rows of
//! `X_road` per GPS point (Eq. 6); `N` GPSFormer blocks alternate a
//! transformer encoder layer (temporal) with a graph refinement layer
//! (spatial), connected by graph readout (Eq. 13). The final sub-graph
//! features drive the graph-classification loss `L_enc` (Eq. 18).

use std::ops::Range;
use std::sync::Arc;

use rand::rngs::StdRng;

use crate::attention::PositionalEncoding;
use crate::encoder::{BatchEncoderOutput, EncoderOutput, InferOutput, TrajEncoder};
use crate::features::SampleInput;
use crate::gridgnn::{GridGnn, GridGnnConfig};
use crate::grl::{GraphRefinementLayer, GrlBatchLayout, GrlConfig};
use crate::layers::Linear;
use crate::transformer::TransformerEncoderLayer;
use rntrajrec_geo::GridSpec;
use rntrajrec_nn::{infer, Init, NodeId, ParamId, ParamStore, Tape, Tensor};
use rntrajrec_roadnet::RoadNetwork;

/// Hyper-parameters of the full RNTrajRec encoder.
#[derive(Debug, Clone)]
pub struct RnTrajRecConfig {
    /// Hidden size `d` (paper: 256–512; here 16–64 for CPU scale).
    pub dim: usize,
    /// GPSFormer blocks `N` (paper default 2).
    pub n_blocks: usize,
    /// Attention heads (paper: 8).
    pub heads: usize,
    /// Transformer FFN hidden size.
    pub ffn_hidden: usize,
    /// GridGNN settings (M layers, backbone).
    pub gridgnn: GridGnnConfig,
    /// GRL ablation switches (Table V).
    pub grl: GrlConfig,
    /// `false` → Table V `w/o GRL`: plain stacked transformer, graph input
    /// ignored after pooling.
    pub use_grl: bool,
}

impl RnTrajRecConfig {
    pub fn small(dim: usize) -> Self {
        let heads = if dim.is_multiple_of(4) { 4 } else { 2 };
        Self {
            dim,
            n_blocks: 2,
            heads,
            ffn_hidden: 2 * dim,
            gridgnn: GridGnnConfig {
                dim,
                layers: 2,
                heads,
                backbone: crate::GnnBackbone::Gat,
                use_grid: true,
            },
            grl: GrlConfig::new(dim, heads),
            use_grl: true,
        }
    }
}

/// The complete RNTrajRec encoder: GridGNN + GPSFormer.
pub struct RnTrajRecEncoder {
    pub gridgnn: GridGnn,
    input_proj: Linear,
    pe: PositionalEncoding,
    blocks: Vec<(TransformerEncoderLayer, Option<GraphRefinementLayer>)>,
    traj_head: Linear,
    /// Weight `w` of the graph classification loss (Eq. 18).
    w_enc: ParamId,
    pub config: RnTrajRecConfig,
}

impl RnTrajRecEncoder {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        net: &RoadNetwork,
        grid: &GridSpec,
        config: RnTrajRecConfig,
    ) -> Self {
        let d = config.dim;
        let gridgnn = GridGnn::new(store, rng, net, grid, config.gridgnn.clone());
        let input_proj = Linear::new(store, rng, "former.in", d + 3, d, true);
        let pe = PositionalEncoding::new(d);
        let blocks = (0..config.n_blocks)
            .map(|l| {
                let te = TransformerEncoderLayer::new(
                    store,
                    rng,
                    &format!("former.b{l}.te"),
                    d,
                    config.heads,
                    config.ffn_hidden,
                );
                let grl = config.use_grl.then(|| {
                    GraphRefinementLayer::new(store, rng, &format!("former.b{l}.grl"), config.grl)
                });
                (te, grl)
            })
            .collect();
        let traj_head = Linear::new(store, rng, "former.traj", d + 25, d, true);
        let w_enc = store.add("former.w_enc", 1, d, Init::Xavier, rng);
        Self {
            gridgnn,
            input_proj,
            pe,
            blocks,
            traj_head,
            w_enc,
            config,
        }
    }

    /// Tape-free twin of the `encode` path for a single trajectory.
    ///
    /// Matches `encode` with a batch of exactly this sample (the GRL's
    /// GraphNorm statistics then cover only this trajectory's sub-graphs),
    /// so results are bit-identical to the tape forward at batch size 1 —
    /// and, crucially for serving, independent of whatever other requests
    /// happen to share a micro-batch.
    pub fn infer_sample(
        &self,
        store: &ParamStore,
        sample: &SampleInput,
        xroad: &Tensor,
    ) -> InferOutput {
        let l = sample.input_len();

        // Sub-graph features Z⁽⁰⁾ and pooled inputs Ĥ⁽⁰⁾ (Eq. 6).
        let mut zs = Vec::with_capacity(l);
        let mut pooled = Vec::with_capacity(l);
        for sg in &sample.subgraphs {
            let z = infer::gather_rows(xroad, &sg.nodes);
            pooled.push(infer::weighted_mean_rows(&z, &sg.weights));
            zs.push(z);
        }
        let pooled_refs: Vec<&Tensor> = pooled.iter().collect();
        let gp = infer::concat_rows(&pooled_refs);
        let extra = select_columns(&sample.base_feats, &[2, 3, 4]);
        let cat = infer::concat_cols(&[&gp, &extra]);
        let h0 = self.input_proj.infer(store, &cat);
        let mut h = infer::add(&h0, &self.pe.table(l)); // Eq. (12)

        // N GPSFormer blocks (Eq. 13).
        for (te, grl) in &self.blocks {
            let tr = te.infer(store, &h);
            match grl {
                Some(grl) => {
                    let tr_rows: Vec<Tensor> =
                        (0..l).map(|i| infer::select_rows(&tr, i, 1)).collect();
                    let csrs: Vec<_> = sample.subgraphs.iter().map(|sg| sg.csr.clone()).collect();
                    let refined = grl.infer(store, &tr_rows, &zs, &csrs);
                    let rows: Vec<Tensor> = refined.iter().map(infer::mean_rows).collect();
                    let row_refs: Vec<&Tensor> = rows.iter().collect();
                    h = infer::concat_rows(&row_refs);
                    zs = refined;
                }
                None => h = tr,
            }
        }

        // Trajectory-level vector: mean pool + environmental context.
        let mean = infer::mean_rows(&h);
        let env = Tensor::row(sample.env.to_vec());
        let traj = self
            .traj_head
            .infer(store, &infer::concat_cols(&[&mean, &env]));
        InferOutput { per_point: h, traj }
    }

    /// Fused batched twin of [`RnTrajRecEncoder::infer_sample`]: encode a
    /// whole micro-batch in one pass, with every member's per-point rows
    /// stacked into a single matrix per block. Each Linear / attention
    /// projection (input projection, q/k/v/output, FFNs, gated fusion,
    /// GAT transforms, trajectory head) runs as **one** stacked matmul for
    /// the whole batch instead of one call per member (or per point, for
    /// the GRL) — while every reduction whose scope defines the result
    /// stays per member: self-attention rows via
    /// `infer::segmented_self_attention`, graph readout via
    /// `infer::segmented_mean_rows`, the GAT pass via a block-diagonal CSR
    /// union, and GraphNorm statistics (the reason naive cross-request
    /// fusion would change results — Eq. 8–9 are *batch* statistics) via
    /// `infer::segmented_norm_stats` scoped to each member's own
    /// sub-graphs.
    ///
    /// Because every fused kernel keeps the member's own accumulation
    /// order, the outputs are **bit-identical** to [`infer_sample`] for
    /// every member regardless of batch composition — the invariant an
    /// online service must never break, pinned by the encoder-parity
    /// proptest in `tests/batch_decode_parity.rs` and asserted in
    /// `serve_bench`.
    ///
    /// [`infer_sample`]: RnTrajRecEncoder::infer_sample
    pub fn infer_batch(
        &self,
        store: &ParamStore,
        samples: &[&SampleInput],
        xroad: &Tensor,
    ) -> Vec<InferOutput> {
        if samples.is_empty() {
            return Vec::new();
        }
        // Stacked layout: members' points concatenated in order, each
        // point owning its sub-graph's row range of the z stack.
        let members_graphs: Vec<Vec<(usize, Arc<rntrajrec_nn::GraphCsr>)>> = samples
            .iter()
            .map(|s| {
                s.subgraphs
                    .iter()
                    .map(|sg| (sg.nodes.len(), Arc::clone(&sg.csr)))
                    .collect()
            })
            .collect();
        let layout = GrlBatchLayout::new(&members_graphs);
        // Member row ranges of the [ΣL, d] per-point stack.
        let mut traj_segs: Vec<Range<usize>> = Vec::with_capacity(samples.len());
        let mut off = 0usize;
        for s in samples {
            traj_segs.push(off..off + s.input_len());
            off += s.input_len();
        }

        // Z⁽⁰⁾ and pooled inputs Ĥ⁽⁰⁾ (Eq. 6): one gather and one
        // segmented weighted mean for every point of every member.
        let all_nodes: Vec<usize> = samples
            .iter()
            .flat_map(|s| s.subgraphs.iter().flat_map(|sg| sg.nodes.iter().copied()))
            .collect();
        let all_weights: Vec<f32> = samples
            .iter()
            .flat_map(|s| s.subgraphs.iter().flat_map(|sg| sg.weights.iter().copied()))
            .collect();
        let mut zs = infer::gather_rows(xroad, &all_nodes);
        let gp = infer::segmented_weighted_mean_rows(&zs, &all_weights, &layout.point_segs);
        let extras: Vec<Tensor> = samples
            .iter()
            .map(|s| select_columns(&s.base_feats, &[2, 3, 4]))
            .collect();
        let extra_refs: Vec<&Tensor> = extras.iter().collect();
        let extra = infer::concat_rows(&extra_refs);
        let cat = infer::concat_cols(&[&gp, &extra]);
        let h0 = self.input_proj.infer(store, &cat);
        // Positional encodings restart per member (Eq. 12).
        let pes: Vec<Tensor> = samples
            .iter()
            .map(|s| self.pe.table(s.input_len()))
            .collect();
        let pe_refs: Vec<&Tensor> = pes.iter().collect();
        let mut h = infer::add(&h0, &infer::concat_rows(&pe_refs));

        // N GPSFormer blocks (Eq. 13), the whole batch per block.
        for (te, grl) in &self.blocks {
            let tr = te.infer_segments(store, &h, &traj_segs);
            match grl {
                Some(grl) => {
                    let refined = grl.infer_batch(store, &tr, &zs, &layout);
                    h = infer::segmented_mean_rows(&refined, &layout.point_segs);
                    zs = refined;
                }
                None => h = tr,
            }
        }

        // Trajectory-level vectors: member-scoped mean pool + environment,
        // one stacked trajectory-head matmul.
        let mean = infer::segmented_mean_rows(&h, &traj_segs);
        let envs: Vec<Tensor> = samples
            .iter()
            .map(|s| Tensor::row(s.env.to_vec()))
            .collect();
        let env_refs: Vec<&Tensor> = envs.iter().collect();
        let env = infer::concat_rows(&env_refs);
        let traj_all = self
            .traj_head
            .infer(store, &infer::concat_cols(&[&mean, &env]));

        traj_segs
            .iter()
            .enumerate()
            .map(|(i, seg)| InferOutput {
                per_point: infer::select_rows(&h, seg.start, seg.len()),
                traj: infer::select_rows(&traj_all, i, 1),
            })
            .collect()
    }
}

impl TrajEncoder for RnTrajRecEncoder {
    fn name(&self) -> &'static str {
        "RNTrajRec"
    }

    fn dim(&self) -> usize {
        self.config.dim
    }

    fn encode(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        batch: &[&SampleInput],
        _training: bool,
        _rng: &mut StdRng,
    ) -> BatchEncoderOutput {
        let _ = self.config.dim;
        // X_road once per batch.
        let xroad = self.gridgnn.forward(tape, store);

        // Per-sample sub-graph features Z⁽⁰⁾ and pooled inputs Ĥ⁽⁰⁾.
        struct SampleState {
            h: NodeId,       // [lτ, d]
            zs: Vec<NodeId>, // per-point [n_i, d]
        }
        let mut states = Vec::with_capacity(batch.len());
        for sample in batch {
            let l = sample.input_len();
            let mut zs = Vec::with_capacity(l);
            let mut pooled = Vec::with_capacity(l);
            for sg in &sample.subgraphs {
                let z = tape.gather_rows(xroad, &sg.nodes);
                pooled.push(tape.weighted_mean_rows(z, &sg.weights)); // Eq. (6)
                zs.push(z);
            }
            let gp = tape.concat_rows(&pooled); // [lτ, d]
                                                // Concat timestamp + grid index (base_feats columns 2..5).
            let extra = tape.leaf(select_columns(&sample.base_feats, &[2, 3, 4]));
            let cat = tape.concat_cols(&[gp, extra]);
            let h0 = self.input_proj.forward(tape, store, cat);
            let h = self.pe.add_to(tape, h0); // Eq. (12)
            states.push(SampleState { h, zs });
        }

        // N GPSFormer blocks (Eq. 13). The GRL runs over the whole batch so
        // GraphNorm sees true mini-batch statistics.
        for (te, grl) in &self.blocks {
            // Temporal: transformer per trajectory.
            let trs: Vec<NodeId> = states
                .iter()
                .map(|s| te.forward(tape, store, s.h))
                .collect();
            match grl {
                Some(grl) => {
                    // Flatten (trajectory, point) pairs for the batched GRL.
                    let mut tr_rows = Vec::new();
                    let mut zs = Vec::new();
                    let mut csrs = Vec::new();
                    for (state, (&tr, sample)) in states.iter().zip(trs.iter().zip(batch.iter())) {
                        for (i, &z) in state.zs.iter().enumerate() {
                            tr_rows.push(tape.select_rows(tr, i, 1));
                            zs.push(z);
                            csrs.push(sample.subgraphs[i].csr.clone());
                        }
                    }
                    let refined = grl.forward(tape, store, &tr_rows, &zs, &csrs);
                    // Scatter back + graph readout per point.
                    let mut k = 0;
                    for state in states.iter_mut() {
                        let mut rows = Vec::with_capacity(state.zs.len());
                        for z_slot in state.zs.iter_mut() {
                            *z_slot = refined[k];
                            rows.push(tape.mean_rows(refined[k]));
                            k += 1;
                        }
                        state.h = tape.concat_rows(&rows);
                    }
                }
                None => {
                    // w/o GRL: the transformer output feeds the next block.
                    for (state, tr) in states.iter_mut().zip(trs) {
                        state.h = tr;
                    }
                }
            }
        }

        // Trajectory-level vector: mean pool + environmental context.
        let mut outputs = Vec::with_capacity(batch.len());
        for (state, sample) in states.iter().zip(batch) {
            let mean = tape.mean_rows(state.h);
            let env = tape.leaf(Tensor::row(sample.env.to_vec()));
            let cat = tape.concat_cols(&[mean, env]);
            let traj = self.traj_head.forward(tape, store, cat);
            outputs.push(EncoderOutput {
                per_point: state.h,
                traj,
            });
        }

        // Graph classification loss L_enc (Eq. 18) on the final Z⁽ᴺ⁾.
        let aux_loss = if self.config.use_grl {
            let w = tape.param(store, self.w_enc); // [1, d]
            let mut terms = Vec::new();
            for (state, sample) in states.iter().zip(batch) {
                for (i, &z) in state.zs.iter().enumerate() {
                    let sg = &sample.subgraphs[i];
                    let Some(true_row) = sg.true_row else {
                        continue;
                    };
                    let scores = tape.matmul_nt(w, z); // [1, n]
                    let log_w = tape.leaf(Tensor::row(
                        sg.weights.iter().map(|&x| x.max(1e-6).ln()).collect(),
                    ));
                    let masked = tape.add(scores, log_w);
                    let logp = tape.log_softmax_rows(masked);
                    let picked = tape.select_cols(logp, true_row, 1);
                    terms.push(tape.scale(picked, -1.0));
                }
            }
            (!terms.is_empty()).then(|| {
                let all = tape.concat_rows(&terms);
                tape.mean_all(all)
            })
        } else {
            None
        };

        BatchEncoderOutput { outputs, aux_loss }
    }

    fn has_infer(&self) -> bool {
        true
    }

    fn precompute_road(&self, store: &ParamStore) -> Option<Tensor> {
        Some(self.gridgnn.infer(store))
    }

    fn infer_one(
        &self,
        store: &ParamStore,
        sample: &SampleInput,
        road: Option<&Tensor>,
    ) -> Option<InferOutput> {
        let owned;
        let xroad = match road {
            Some(t) => t,
            None => {
                owned = self.gridgnn.infer(store);
                &owned
            }
        };
        Some(self.infer_sample(store, sample, xroad))
    }

    fn infer_batch(
        &self,
        store: &ParamStore,
        samples: &[&SampleInput],
        road: Option<&Tensor>,
    ) -> Option<Vec<InferOutput>> {
        let owned;
        let xroad = match road {
            Some(t) => t,
            None => {
                owned = self.gridgnn.infer(store);
                &owned
            }
        };
        Some(RnTrajRecEncoder::infer_batch(self, store, samples, xroad))
    }
}

/// Copy selected columns of a constant tensor (feature slicing outside the
/// tape — no gradient needed).
fn select_columns(t: &Tensor, cols: &[usize]) -> Tensor {
    let mut out = Tensor::zeros(t.rows, cols.len());
    for r in 0..t.rows {
        for (i, &c) in cols.iter().enumerate() {
            out.set(r, i, t.get(r, c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureExtractor;
    use rand::SeedableRng;
    use rntrajrec_roadnet::{CityConfig, RTree, SyntheticCity};
    use rntrajrec_synth::{SimConfig, Simulator};

    fn build() -> (SyntheticCity, RTree) {
        let city = SyntheticCity::generate(CityConfig::tiny());
        let rtree = RTree::build(&city.net);
        (city, rtree)
    }

    fn inputs(city: &SyntheticCity, rtree: &RTree, n: usize) -> Vec<SampleInput> {
        let grid = city.net.grid(50.0);
        let fx = FeatureExtractor::new(&city.net, rtree, grid);
        let mut sim = Simulator::new(
            &city.net,
            SimConfig {
                target_len: 17,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(7);
        (0..n)
            .map(|_| fx.extract(&sim.sample(&mut rng, 8)))
            .collect()
    }

    #[test]
    fn encoder_output_shapes() {
        let (city, rtree) = build();
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let grid = city.net.grid(50.0);
        let enc = RnTrajRecEncoder::new(
            &mut store,
            &mut rng,
            &city.net,
            &grid,
            RnTrajRecConfig::small(16),
        );
        let ins = inputs(&city, &rtree, 2);
        let refs: Vec<&SampleInput> = ins.iter().collect();
        let mut tape = Tape::new();
        let out = enc.encode(&mut tape, &store, &refs, true, &mut rng);
        assert_eq!(out.outputs.len(), 2);
        for (o, s) in out.outputs.iter().zip(&ins) {
            assert_eq!(tape.value(o.per_point).shape(), (s.input_len(), 16));
            assert_eq!(tape.value(o.traj).shape(), (1, 16));
            assert!(tape.value(o.per_point).all_finite());
        }
        let aux = out.aux_loss.expect("L_enc expected with GRL enabled");
        assert!(tape.value(aux).item().is_finite());
        assert!(tape.value(aux).item() >= 0.0);
    }

    #[test]
    fn without_grl_has_no_aux_loss() {
        let (city, rtree) = build();
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let grid = city.net.grid(50.0);
        let mut cfg = RnTrajRecConfig::small(16);
        cfg.use_grl = false;
        let enc = RnTrajRecEncoder::new(&mut store, &mut rng, &city.net, &grid, cfg);
        let ins = inputs(&city, &rtree, 1);
        let refs: Vec<&SampleInput> = ins.iter().collect();
        let mut tape = Tape::new();
        let out = enc.encode(&mut tape, &store, &refs, true, &mut rng);
        assert!(out.aux_loss.is_none());
        assert_eq!(
            tape.value(out.outputs[0].per_point).shape(),
            (ins[0].input_len(), 16)
        );
    }

    #[test]
    fn infer_sample_matches_tape_encode() {
        let (city, rtree) = build();
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let grid = city.net.grid(50.0);
        let enc = RnTrajRecEncoder::new(
            &mut store,
            &mut rng,
            &city.net,
            &grid,
            RnTrajRecConfig::small(16),
        );
        let ins = inputs(&city, &rtree, 2);
        let xroad = enc.gridgnn.infer(&store);
        for sample in &ins {
            // Batch of exactly this sample: GraphNorm statistics match.
            let mut tape = Tape::new();
            let out = enc.encode(&mut tape, &store, &[sample], false, &mut rng);
            let fast = enc.infer_sample(&store, sample, &xroad);
            let pp = tape.value(out.outputs[0].per_point);
            let tj = tape.value(out.outputs[0].traj);
            assert_eq!(fast.per_point.shape(), pp.shape());
            // The twins mirror the tape op-for-op: bit-identical, not
            // merely close (the documented serving contract).
            assert_eq!(
                fast.per_point.data, pp.data,
                "per-point infer not bit-identical"
            );
            assert_eq!(fast.traj.data, tj.data, "traj infer not bit-identical");
        }
    }

    #[test]
    fn infer_batch_matches_infer_sample_bitwise() {
        let (city, rtree) = build();
        let mut rng = StdRng::seed_from_u64(8);
        let mut store = ParamStore::new();
        let grid = city.net.grid(50.0);
        // Exercise every ablation the batch path must honour: full model,
        // w/o GF (fusion FFN), w/o GAT (forward FFN), w/o GN (LayerNorm).
        for (gf, gat, gn) in [
            (true, true, true),
            (false, true, true),
            (true, false, true),
            (true, true, false),
        ] {
            let mut cfg = RnTrajRecConfig::small(16);
            cfg.grl.gated_fusion = gf;
            cfg.grl.gat = gat;
            cfg.grl.graph_norm = gn;
            let enc = RnTrajRecEncoder::new(&mut store, &mut rng, &city.net, &grid, cfg);
            let ins = inputs(&city, &rtree, 3);
            let refs: Vec<&SampleInput> = ins.iter().collect();
            let xroad = enc.gridgnn.infer(&store);
            let batch = enc.infer_batch(&store, &refs, &xroad);
            assert_eq!(batch.len(), refs.len());
            for (i, (got, sample)) in batch.iter().zip(&ins).enumerate() {
                let want = enc.infer_sample(&store, sample, &xroad);
                assert_eq!(
                    got.per_point.data, want.per_point.data,
                    "variant {gf}/{gat}/{gn}: member {i} per-point diverged"
                );
                assert_eq!(
                    got.traj.data, want.traj.data,
                    "variant {gf}/{gat}/{gn}: member {i} traj diverged"
                );
            }
            store = ParamStore::new();
        }
    }

    #[test]
    fn infer_batch_empty_and_singleton() {
        let (city, rtree) = build();
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let grid = city.net.grid(50.0);
        let enc = RnTrajRecEncoder::new(
            &mut store,
            &mut rng,
            &city.net,
            &grid,
            RnTrajRecConfig::small(16),
        );
        let xroad = enc.gridgnn.infer(&store);
        assert!(enc.infer_batch(&store, &[], &xroad).is_empty());
        let ins = inputs(&city, &rtree, 1);
        let one = enc.infer_batch(&store, &[&ins[0]], &xroad);
        let want = enc.infer_sample(&store, &ins[0], &xroad);
        assert_eq!(one[0].per_point.data, want.per_point.data);
        assert_eq!(one[0].traj.data, want.traj.data);
    }

    #[test]
    fn infer_one_without_cache_recomputes_road() {
        let (city, rtree) = build();
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let grid = city.net.grid(50.0);
        let enc = RnTrajRecEncoder::new(
            &mut store,
            &mut rng,
            &city.net,
            &grid,
            RnTrajRecConfig::small(16),
        );
        let ins = inputs(&city, &rtree, 1);
        let xroad = enc
            .precompute_road(&store)
            .expect("RNTrajRec precomputes X_road");
        let cached = enc.infer_one(&store, &ins[0], Some(&xroad)).unwrap();
        let uncached = enc.infer_one(&store, &ins[0], None).unwrap();
        assert_eq!(cached.per_point.data, uncached.per_point.data);
        assert_eq!(cached.traj.data, uncached.traj.data);
    }

    #[test]
    fn backward_reaches_road_embeddings() {
        let (city, rtree) = build();
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let grid = city.net.grid(50.0);
        let enc = RnTrajRecEncoder::new(
            &mut store,
            &mut rng,
            &city.net,
            &grid,
            RnTrajRecConfig::small(16),
        );
        let ins = inputs(&city, &rtree, 1);
        let refs: Vec<&SampleInput> = ins.iter().collect();
        let mut tape = Tape::new();
        let out = enc.encode(&mut tape, &store, &refs, true, &mut rng);
        let loss = out.aux_loss.unwrap();
        store.zero_grad();
        tape.backward(loss, &mut store);
        // The aux loss must reach all the way down to GridGNN's tables.
        let any_grid_grad = store
            .ids()
            .filter(|&id| store.name(id).starts_with("gridgnn"))
            .any(|id| store.grad(id).data.iter().any(|&g| g != 0.0));
        assert!(any_grid_grad, "no gradient reached GridGNN parameters");
    }
}
