//! Graph neural layers: GAT (Eq. 3–4), GCN and GIN (Fig. 7(a) backbones).
//!
//! Both the tape `forward` and the tape-free `infer` of every layer run on
//! the unified `rntrajrec_nn::kernels` compute core: the per-head feature
//! transforms are row-partitioned matmuls and the CSR gather/scatter
//! (edge scores → segmented softmax → neighbour aggregation) partitions by
//! destination-node segment ranges, so multi-threaded aggregation is
//! bit-identical to the sequential loop.

use std::sync::Arc;

use rand::rngs::StdRng;

use crate::layers::Linear;
use rntrajrec_nn::{infer, GraphCsr, Init, NodeId, ParamId, ParamStore, Tape, Tensor};

/// Multi-head graph attention layer exactly as Eq. (3)–(4):
/// per head `k`, scores `a_ij = softmax_j(LeakyReLU(a_kᵀ[Ŵ_k h_i ∥ Ŵ_k h_j]))`
/// and outputs `∥_k LeakyReLU(Σ_j a_ij W_k h_j)`.
///
/// The paper distinguishes `Ŵ_k` (score transform) from `W_k` (feature
/// transform); both are learned here.
#[derive(Debug, Clone)]
pub struct GatLayer {
    /// Feature transform `W_k` per head.
    w: Vec<ParamId>,
    /// Score transform `Ŵ_k` per head.
    w_hat: Vec<ParamId>,
    /// Attention vector halves: `a_k = [a_src ∥ a_dst]`.
    a_src: Vec<ParamId>,
    a_dst: Vec<ParamId>,
    pub heads: usize,
    pub in_dim: usize,
    pub out_dim: usize,
    pub slope: f32,
}

impl GatLayer {
    /// `out_dim` must be divisible by `heads`; each head produces
    /// `out_dim / heads` features which are concatenated.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        heads: usize,
    ) -> Self {
        assert!(
            out_dim.is_multiple_of(heads),
            "out_dim {out_dim} must divide into {heads} heads"
        );
        let dh = out_dim / heads;
        let mut w = Vec::with_capacity(heads);
        let mut w_hat = Vec::with_capacity(heads);
        let mut a_src = Vec::with_capacity(heads);
        let mut a_dst = Vec::with_capacity(heads);
        for k in 0..heads {
            w.push(store.add(format!("{name}.w{k}"), in_dim, dh, Init::Xavier, rng));
            w_hat.push(store.add(format!("{name}.what{k}"), in_dim, dh, Init::Xavier, rng));
            a_src.push(store.add(format!("{name}.asrc{k}"), dh, 1, Init::Xavier, rng));
            a_dst.push(store.add(format!("{name}.adst{k}"), dh, 1, Init::Xavier, rng));
        }
        Self {
            w,
            w_hat,
            a_src,
            a_dst,
            heads,
            in_dim,
            out_dim,
            slope: 0.2,
        }
    }

    /// `h: [n, in_dim]` with adjacency `csr` → `[n, out_dim]`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        h: NodeId,
        csr: &Arc<GraphCsr>,
    ) -> NodeId {
        let mut outs = Vec::with_capacity(self.heads);
        for k in 0..self.heads {
            let w = tape.param(store, self.w[k]);
            let w_hat = tape.param(store, self.w_hat[k]);
            let hw = tape.matmul(h, w); // [n, dh]
            let hw_hat = tape.matmul(h, w_hat); // [n, dh]
            let a_src = tape.param(store, self.a_src[k]);
            let a_dst = tape.param(store, self.a_dst[k]);
            let s_src = tape.matmul(hw_hat, a_src); // [n,1]
            let s_dst = tape.matmul(hw_hat, a_dst); // [n,1]
            let scores = tape.edge_scores(s_src, s_dst, csr);
            let scores = tape.leaky_relu(scores, self.slope);
            let alphas = tape.segmented_softmax(scores, csr);
            let agg = tape.neighbor_sum(alphas, hw, csr);
            outs.push(tape.leaky_relu(agg, self.slope));
        }
        tape.concat_cols(&outs)
    }

    /// Tape-free twin of [`GatLayer::forward`].
    pub fn infer(&self, store: &ParamStore, h: &Tensor, csr: &GraphCsr) -> Tensor {
        let mut outs = Vec::with_capacity(self.heads);
        for k in 0..self.heads {
            let hw = infer::matmul(h, store.value(self.w[k]));
            let hw_hat = infer::matmul(h, store.value(self.w_hat[k]));
            let s_src = infer::matmul(&hw_hat, store.value(self.a_src[k]));
            let s_dst = infer::matmul(&hw_hat, store.value(self.a_dst[k]));
            let scores = infer::leaky_relu(&infer::edge_scores(&s_src, &s_dst, csr), self.slope);
            let alphas = infer::segmented_softmax(&scores, csr);
            let agg = infer::neighbor_sum(&alphas, &hw, csr);
            outs.push(infer::leaky_relu(&agg, self.slope));
        }
        let refs: Vec<&Tensor> = outs.iter().collect();
        infer::concat_cols(&refs)
    }
}

/// Mean-aggregation GCN layer: `h' = ReLU(mean_{j∈N(i)∪{i}} h_j · W + b)`.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    pub lin: Linear,
}

impl GcnLayer {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        Self {
            lin: Linear::new(store, rng, name, in_dim, out_dim, true),
        }
    }

    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        h: NodeId,
        csr: &Arc<GraphCsr>,
    ) -> NodeId {
        let alphas = tape.leaf(mean_alphas(csr));
        let agg = tape.neighbor_sum(alphas, h, csr);
        let y = self.lin.forward(tape, store, agg);
        tape.relu(y)
    }

    /// Tape-free twin of [`GcnLayer::forward`].
    pub fn infer(&self, store: &ParamStore, h: &Tensor, csr: &GraphCsr) -> Tensor {
        let agg = infer::neighbor_sum(&mean_alphas(csr), h, csr);
        infer::relu(&self.lin.infer(store, &agg))
    }
}

/// GIN layer: `h' = MLP((1+ε)·h_i + Σ_{j∈N(i)} h_j)` with learnable ε
/// folded into the sum weights being 1 and ε fixed small (ε=0 variant).
#[derive(Debug, Clone)]
pub struct GinLayer {
    pub l1: Linear,
    pub l2: Linear,
}

impl GinLayer {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        Self {
            l1: Linear::new(store, rng, &format!("{name}.1"), in_dim, out_dim, true),
            l2: Linear::new(store, rng, &format!("{name}.2"), out_dim, out_dim, true),
        }
    }

    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        h: NodeId,
        csr: &Arc<GraphCsr>,
    ) -> NodeId {
        let ones = tape.leaf(Tensor::full(csr.num_edges(), 1, 1.0));
        let agg = tape.neighbor_sum(ones, h, csr); // Σ_j h_j (self-loop in csr adds h_i)
        let y = self.l1.forward(tape, store, agg);
        let y = tape.relu(y);
        self.l2.forward(tape, store, y)
    }

    /// Tape-free twin of [`GinLayer::forward`].
    pub fn infer(&self, store: &ParamStore, h: &Tensor, csr: &GraphCsr) -> Tensor {
        let ones = Tensor::full(csr.num_edges(), 1, 1.0);
        let agg = infer::neighbor_sum(&ones, h, csr);
        let y = infer::relu(&self.l1.infer(store, &agg));
        self.l2.infer(store, &y)
    }
}

/// Uniform `1/deg(i)` attention weights for mean aggregation.
fn mean_alphas(csr: &GraphCsr) -> Tensor {
    let mut t = Tensor::zeros(csr.num_edges(), 1);
    for i in 0..csr.num_nodes() {
        let seg = csr.segment(i);
        let w = 1.0 / seg.len().max(1) as f32;
        for e in seg {
            t.data[e] = w;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rntrajrec_nn::Adam;

    fn path_csr() -> Arc<GraphCsr> {
        Arc::new(GraphCsr::from_neighbor_lists(
            &[vec![1], vec![0, 2], vec![1]],
            true,
        ))
    }

    #[test]
    fn gat_shapes_and_finiteness() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let gat = GatLayer::new(&mut store, &mut rng, "g", 6, 8, 2);
        let mut tape = Tape::new();
        let h = tape.leaf(Tensor::uniform(3, 6, 1.0, &mut rng));
        let y = gat.forward(&mut tape, &store, h, &path_csr());
        assert_eq!(tape.value(y).shape(), (3, 8));
        assert!(tape.value(y).all_finite());
    }

    #[test]
    fn gat_aggregates_neighbourhood_information() {
        // Node 0's output must depend on node 1's features (its neighbour)
        // but node 2 is not adjacent to 0, so changing node 2 must leave
        // node 0's output unchanged.
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let gat = GatLayer::new(&mut store, &mut rng, "g", 4, 4, 1);
        let csr = path_csr();
        let base = Tensor::uniform(3, 4, 1.0, &mut rng);
        let mut tweak_n1 = base.clone();
        tweak_n1.set(1, 0, 5.0);
        let mut tweak_n2 = base.clone();
        tweak_n2.set(2, 0, 5.0);

        let mut tape = Tape::new();
        let h0 = tape.leaf(base);
        let h1 = tape.leaf(tweak_n1);
        let h2 = tape.leaf(tweak_n2);
        let y0 = gat.forward(&mut tape, &store, h0, &csr);
        let y1 = gat.forward(&mut tape, &store, h1, &csr);
        let y2 = gat.forward(&mut tape, &store, h2, &csr);
        let row0 = |n: NodeId, tape: &Tape| tape.value(n).row_slice(0).to_vec();
        assert_ne!(
            row0(y0, &tape),
            row0(y1, &tape),
            "neighbour change must propagate"
        );
        assert_eq!(
            row0(y0, &tape),
            row0(y2, &tape),
            "non-neighbour change must not"
        );
    }

    #[test]
    fn gat_learns_simple_node_task() {
        // Distinguish node 1 (degree 2) from nodes 0/2 using features that
        // only become separable after aggregation.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let gat = GatLayer::new(&mut store, &mut rng, "g", 2, 4, 1);
        let head = Linear::new(&mut store, &mut rng, "h", 4, 1, true);
        let csr = path_csr();
        let x = Tensor::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        let target = Tensor::from_vec(3, 1, vec![0.0, 1.0, 0.0]);
        let mut opt = Adam::new(0.03);
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            let mut tape = Tape::new();
            let h = tape.leaf(x.clone());
            let z = gat.forward(&mut tape, &store, h, &csr);
            let y = head.forward(&mut tape, &store, z);
            let y = tape.sigmoid(y);
            let t = tape.leaf(target.clone());
            let d = tape.sub(y, t);
            let sq = tape.mul(d, d);
            let loss = tape.mean_all(sq);
            last = tape.value(loss).item();
            store.zero_grad();
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!(last < 0.03, "GAT failed to fit node task: {last}");
    }

    #[test]
    fn gcn_mean_aggregation_exact() {
        // With identity-like weights check the aggregation itself: use the
        // raw neighbor_sum with mean alphas.
        let csr = path_csr();
        let mut tape = Tape::new();
        let h = tape.leaf(Tensor::from_vec(3, 1, vec![3.0, 6.0, 9.0]));
        let alphas = tape.leaf(mean_alphas(&csr));
        let agg = tape.neighbor_sum(alphas, h, &csr);
        let v = tape.value(agg);
        // Node 0: mean(h1, h0) = 4.5; node 1: mean(h0,h2,h1)=6; node 2: mean(h1,h2)=7.5.
        assert_eq!(v.data, vec![4.5, 6.0, 7.5]);
    }

    #[test]
    fn gcn_and_gin_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let gcn = GcnLayer::new(&mut store, &mut rng, "gcn", 5, 7);
        let gin = GinLayer::new(&mut store, &mut rng, "gin", 5, 7);
        let csr = path_csr();
        let mut tape = Tape::new();
        let h = tape.leaf(Tensor::uniform(3, 5, 1.0, &mut rng));
        let a = gcn.forward(&mut tape, &store, h, &csr);
        let b = gin.forward(&mut tape, &store, h, &csr);
        assert_eq!(tape.value(a).shape(), (3, 7));
        assert_eq!(tape.value(b).shape(), (3, 7));
    }
}
