//! Baseline encoders (Section VI-A4), each re-implemented at the level the
//! paper uses them: as a trajectory encoder in front of the shared
//! multi-task decoder ("A + Decoder", Remark 2).
//!
//! * [`MTrajRecEncoder`] — grid embedding + GRU (the paper's strongest
//!   published end-to-end baseline [11]).
//! * [`TransformerBaseline`] — vanilla transformer over grid/time features.
//! * [`T2vecEncoder`] — BiLSTM ([6]).
//! * [`NeuTrajEncoder`] — LSTM with a spatial-attention memory over the
//!   neighbouring grid cells ([7]).
//! * [`T3sEncoder`] — self-attention + spatial LSTM, gated mix ([8]).
//! * [`GtsEncoder`] — GCN over the road graph anchored at the nearest
//!   segment ("POI") + GRU ([10]).
//! * [`DhtrSeq2Seq`] — the learned interpolator of DHTR [19]: seq2seq
//!   position regression (its Kalman/HMM post-processing lives in
//!   `rntrajrec-mapmatch` / the evaluation harness).

use std::sync::Arc;

use rand::rngs::StdRng;

use crate::attention::{AdditiveAttention, MultiHeadAttention, PositionalEncoding};
use crate::encoder::{BatchEncoderOutput, EncoderOutput, TrajEncoder};
use crate::features::SampleInput;
use crate::graph_layers::GcnLayer;
use crate::layers::Linear;
use crate::rnn::{BiLstm, GruCell, LstmCell};
use crate::transformer::TransformerEncoderLayer;
use rntrajrec_nn::{GraphCsr, Init, NodeId, ParamId, ParamStore, Tape, Tensor};
use rntrajrec_roadnet::RoadNetwork;

/// Shared input pipeline: grid-cell embedding ++ 5 base features → linear.
struct GridInput {
    grid_emb: ParamId,
    proj: Linear,
}

impl GridInput {
    fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        num_cells: usize,
        dim: usize,
    ) -> Self {
        Self {
            grid_emb: store.add(
                format!("{name}.grid_emb"),
                num_cells,
                dim,
                Init::Uniform(0.1),
                rng,
            ),
            proj: Linear::new(store, rng, &format!("{name}.in"), dim + 5, dim, true),
        }
    }

    /// `[l_τ, dim]` point features.
    fn forward(&self, tape: &mut Tape, store: &ParamStore, sample: &SampleInput) -> NodeId {
        let table = tape.param(store, self.grid_emb);
        let emb = tape.gather_rows(table, &sample.grid_flat);
        let base = tape.leaf(sample.base_feats.clone());
        let cat = tape.concat_cols(&[emb, base]);
        self.proj.forward(tape, store, cat)
    }
}

/// Shared trajectory-level head: mean pooled states ++ env context → d.
struct TrajHead {
    head: Linear,
}

impl TrajHead {
    fn new(store: &mut ParamStore, rng: &mut StdRng, name: &str, dim: usize) -> Self {
        Self {
            head: Linear::new(store, rng, &format!("{name}.traj"), dim + 25, dim, true),
        }
    }

    fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        per_point: NodeId,
        sample: &SampleInput,
    ) -> NodeId {
        let mean = tape.mean_rows(per_point);
        let env = tape.leaf(Tensor::row(sample.env.to_vec()));
        let cat = tape.concat_cols(&[mean, env]);
        self.head.forward(tape, store, cat)
    }
}

// ---------------------------------------------------------------- MTrajRec

/// MTrajRec's encoder: a single GRU over grid/time features.
pub struct MTrajRecEncoder {
    input: GridInput,
    gru: GruCell,
    traj: TrajHead,
    dim: usize,
}

impl MTrajRecEncoder {
    pub fn new(store: &mut ParamStore, rng: &mut StdRng, num_cells: usize, dim: usize) -> Self {
        Self {
            input: GridInput::new(store, rng, "mtraj", num_cells, dim),
            gru: GruCell::new(store, rng, "mtraj.gru", dim, dim),
            traj: TrajHead::new(store, rng, "mtraj", dim),
            dim,
        }
    }
}

impl TrajEncoder for MTrajRecEncoder {
    fn name(&self) -> &'static str {
        "MTrajRec"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        batch: &[&SampleInput],
        _training: bool,
        _rng: &mut StdRng,
    ) -> BatchEncoderOutput {
        let outputs = batch
            .iter()
            .map(|sample| {
                let x = self.input.forward(tape, store, sample);
                let per_point = self.gru.run_sequence(tape, store, x);
                let traj = self.traj.forward(tape, store, per_point, sample);
                EncoderOutput { per_point, traj }
            })
            .collect();
        BatchEncoderOutput {
            outputs,
            aux_loss: None,
        }
    }
}

// ------------------------------------------------------------- Transformer

/// The "Transformer + Decoder" baseline: vanilla transformer encoder over
/// grid/time features with positional encoding.
pub struct TransformerBaseline {
    input: GridInput,
    pe: PositionalEncoding,
    layers: Vec<TransformerEncoderLayer>,
    traj: TrajHead,
    dim: usize,
}

impl TransformerBaseline {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        num_cells: usize,
        dim: usize,
        n_layers: usize,
        heads: usize,
    ) -> Self {
        Self {
            input: GridInput::new(store, rng, "tf", num_cells, dim),
            pe: PositionalEncoding::new(dim),
            layers: (0..n_layers)
                .map(|l| {
                    TransformerEncoderLayer::new(
                        store,
                        rng,
                        &format!("tf.l{l}"),
                        dim,
                        heads,
                        2 * dim,
                    )
                })
                .collect(),
            traj: TrajHead::new(store, rng, "tf", dim),
            dim,
        }
    }
}

impl TrajEncoder for TransformerBaseline {
    fn name(&self) -> &'static str {
        "Transformer"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        batch: &[&SampleInput],
        _training: bool,
        _rng: &mut StdRng,
    ) -> BatchEncoderOutput {
        let outputs = batch
            .iter()
            .map(|sample| {
                let x = self.input.forward(tape, store, sample);
                let mut h = self.pe.add_to(tape, x);
                for l in &self.layers {
                    h = l.forward(tape, store, h);
                }
                let traj = self.traj.forward(tape, store, h, sample);
                EncoderOutput { per_point: h, traj }
            })
            .collect();
        BatchEncoderOutput {
            outputs,
            aux_loss: None,
        }
    }
}

// ------------------------------------------------------------------- t2vec

/// t2vec's encoder: a bidirectional LSTM over grid/time features.
pub struct T2vecEncoder {
    input: GridInput,
    bilstm: BiLstm,
    traj: TrajHead,
    dim: usize,
}

impl T2vecEncoder {
    pub fn new(store: &mut ParamStore, rng: &mut StdRng, num_cells: usize, dim: usize) -> Self {
        Self {
            input: GridInput::new(store, rng, "t2vec", num_cells, dim),
            bilstm: BiLstm::new(store, rng, "t2vec.bilstm", dim, dim),
            traj: TrajHead::new(store, rng, "t2vec", dim),
            dim,
        }
    }
}

impl TrajEncoder for T2vecEncoder {
    fn name(&self) -> &'static str {
        "t2vec"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        batch: &[&SampleInput],
        _training: bool,
        _rng: &mut StdRng,
    ) -> BatchEncoderOutput {
        let outputs = batch
            .iter()
            .map(|sample| {
                let x = self.input.forward(tape, store, sample);
                let per_point = self.bilstm.run_sequence(tape, store, x);
                let traj = self.traj.forward(tape, store, per_point, sample);
                EncoderOutput { per_point, traj }
            })
            .collect();
        BatchEncoderOutput {
            outputs,
            aux_loss: None,
        }
    }
}

// ----------------------------------------------------------------- NeuTraj

/// NeuTraj's encoder: LSTM augmented with a spatial-attention memory —
/// the embedding of each point's grid cell is blended (gated) with the
/// mean embedding of the 4-neighbourhood cells before entering the LSTM.
pub struct NeuTrajEncoder {
    input: GridInput,
    gate: Linear,
    lstm: LstmCell,
    traj: TrajHead,
    grid_cols: usize,
    grid_rows: usize,
    dim: usize,
}

impl NeuTrajEncoder {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        grid_cols: usize,
        grid_rows: usize,
        dim: usize,
    ) -> Self {
        let num_cells = grid_cols * grid_rows;
        Self {
            input: GridInput::new(store, rng, "neutraj", num_cells, dim),
            gate: Linear::new(store, rng, "neutraj.gate", 2 * dim, dim, true),
            lstm: LstmCell::new(store, rng, "neutraj.lstm", 2 * dim, dim),
            traj: TrajHead::new(store, rng, "neutraj", dim),
            grid_cols,
            grid_rows,
            dim,
        }
    }

    fn neighbor_cells(&self, flat: usize) -> Vec<usize> {
        let (c, r) = (flat % self.grid_cols, flat / self.grid_cols);
        let mut out = Vec::with_capacity(4);
        if c > 0 {
            out.push(flat - 1);
        }
        if c + 1 < self.grid_cols {
            out.push(flat + 1);
        }
        if r > 0 {
            out.push(flat - self.grid_cols);
        }
        if r + 1 < self.grid_rows {
            out.push(flat + self.grid_cols);
        }
        if out.is_empty() {
            out.push(flat);
        }
        out
    }
}

impl TrajEncoder for NeuTrajEncoder {
    fn name(&self) -> &'static str {
        "NeuTraj"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        batch: &[&SampleInput],
        _training: bool,
        _rng: &mut StdRng,
    ) -> BatchEncoderOutput {
        let outputs = batch
            .iter()
            .map(|sample| {
                let x = self.input.forward(tape, store, sample);
                // Spatial memory: gated mean of neighbour-cell embeddings.
                let table = tape.param(store, self.input.grid_emb);
                let mem_rows: Vec<NodeId> = sample
                    .grid_flat
                    .iter()
                    .map(|&flat| {
                        let nbrs = self.neighbor_cells(flat);
                        let emb = tape.gather_rows(table, &nbrs);
                        tape.mean_rows(emb)
                    })
                    .collect();
                let mem = tape.concat_rows(&mem_rows); // [lτ, d]
                let cat = tape.concat_cols(&[x, mem]);
                let g_lin = self.gate.forward(tape, store, cat);
                let g = tape.sigmoid(g_lin);
                let gated_mem = tape.mul(g, mem);
                let lstm_in = tape.concat_cols(&[x, gated_mem]);
                let per_point = self.lstm.run_sequence(tape, store, lstm_in);
                let traj = self.traj.forward(tape, store, per_point, sample);
                EncoderOutput { per_point, traj }
            })
            .collect();
        BatchEncoderOutput {
            outputs,
            aux_loss: None,
        }
    }
}

// --------------------------------------------------------------------- T3S

/// T3S: a self-attention branch for structural features and an LSTM branch
/// for spatial features, mixed with a learned scalar gate.
pub struct T3sEncoder {
    input: GridInput,
    mha: MultiHeadAttention,
    lstm: LstmCell,
    mix: ParamId,
    traj: TrajHead,
    dim: usize,
}

impl T3sEncoder {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        num_cells: usize,
        dim: usize,
        heads: usize,
    ) -> Self {
        Self {
            input: GridInput::new(store, rng, "t3s", num_cells, dim),
            mha: MultiHeadAttention::new(store, rng, "t3s.mha", dim, heads),
            lstm: LstmCell::new(store, rng, "t3s.lstm", dim, dim),
            mix: store.add("t3s.mix", 1, 1, Init::Zeros, rng),
            traj: TrajHead::new(store, rng, "t3s", dim),
            dim,
        }
    }
}

impl TrajEncoder for T3sEncoder {
    fn name(&self) -> &'static str {
        "T3S"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        batch: &[&SampleInput],
        _training: bool,
        _rng: &mut StdRng,
    ) -> BatchEncoderOutput {
        let outputs = batch
            .iter()
            .map(|sample| {
                let x = self.input.forward(tape, store, sample);
                let attn = self.mha.forward(tape, store, x);
                let lstm = self.lstm.run_sequence(tape, store, x);
                let l = sample.input_len();
                let mix = tape.param(store, self.mix);
                let g = tape.sigmoid(mix); // scalar in (0,1)
                let ones = tape.leaf(Tensor::full(l, 1, 1.0));
                let g_col = tape.matmul(ones, g); // [lτ,1]
                let a_part = tape.mul_colvec(attn, g_col);
                let neg = tape.scale(g_col, -1.0);
                let inv = tape.add_const(neg, 1.0);
                let l_part = tape.mul_colvec(lstm, inv);
                let per_point = tape.add(a_part, l_part);
                let traj = self.traj.forward(tape, store, per_point, sample);
                EncoderOutput { per_point, traj }
            })
            .collect();
        BatchEncoderOutput {
            outputs,
            aux_loss: None,
        }
    }
}

// --------------------------------------------------------------------- GTS

/// GTS adapted to our setting (Section VI-A4 item vii): road-graph GCN over
/// segment ("POI") embeddings, each GPS point anchored at its nearest
/// segment, then a GRU over the sequence.
pub struct GtsEncoder {
    road_emb: ParamId,
    gcns: Vec<GcnLayer>,
    proj: Linear,
    gru: GruCell,
    traj: TrajHead,
    csr: Arc<GraphCsr>,
    dim: usize,
}

impl GtsEncoder {
    pub fn new(store: &mut ParamStore, rng: &mut StdRng, net: &RoadNetwork, dim: usize) -> Self {
        let lists: Vec<Vec<usize>> = net
            .segment_ids()
            .map(|id| {
                net.neighbors_undirected(id)
                    .iter()
                    .map(|s| s.index())
                    .collect()
            })
            .collect();
        Self {
            road_emb: store.add(
                "gts.road_emb",
                net.num_segments(),
                dim,
                Init::Uniform(0.1),
                rng,
            ),
            gcns: (0..2)
                .map(|l| GcnLayer::new(store, rng, &format!("gts.gcn{l}"), dim, dim))
                .collect(),
            proj: Linear::new(store, rng, "gts.in", dim + 5, dim, true),
            gru: GruCell::new(store, rng, "gts.gru", dim, dim),
            traj: TrajHead::new(store, rng, "gts", dim),
            csr: Arc::new(GraphCsr::from_neighbor_lists(&lists, true)),
            dim,
        }
    }
}

impl TrajEncoder for GtsEncoder {
    fn name(&self) -> &'static str {
        "GTS"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        batch: &[&SampleInput],
        _training: bool,
        _rng: &mut StdRng,
    ) -> BatchEncoderOutput {
        // Graph representation once per batch.
        let mut x = tape.param(store, self.road_emb);
        for gcn in &self.gcns {
            x = gcn.forward(tape, store, x, &self.csr);
        }
        let outputs = batch
            .iter()
            .map(|sample| {
                let emb = tape.gather_rows(x, &sample.nearest_seg);
                let base = tape.leaf(sample.base_feats.clone());
                let cat = tape.concat_cols(&[emb, base]);
                let h = self.proj.forward(tape, store, cat);
                let per_point = self.gru.run_sequence(tape, store, h);
                let traj = self.traj.forward(tape, store, per_point, sample);
                EncoderOutput { per_point, traj }
            })
            .collect();
        BatchEncoderOutput {
            outputs,
            aux_loss: None,
        }
    }
}

// -------------------------------------------------------------------- DHTR

/// DHTR's learned interpolator: encoder GRU over the low-sample input,
/// decoder GRU with additive attention regressing the *position* of every
/// target step (normalised coordinates). Kalman smoothing and HMM map
/// matching post-process the regressed positions (two-stage method).
pub struct DhtrSeq2Seq {
    in_proj: Linear,
    enc_gru: GruCell,
    attn: AdditiveAttention,
    dec_gru: GruCell,
    out: Linear,
    pub dim: usize,
}

impl DhtrSeq2Seq {
    pub fn new(store: &mut ParamStore, rng: &mut StdRng, dim: usize) -> Self {
        Self {
            in_proj: Linear::new(store, rng, "dhtr.in", 5, dim, true),
            enc_gru: GruCell::new(store, rng, "dhtr.enc", dim, dim),
            attn: AdditiveAttention::new(store, rng, "dhtr.attn", dim),
            dec_gru: GruCell::new(store, rng, "dhtr.dec", dim + 2, dim),
            out: Linear::new(store, rng, "dhtr.out", dim, 2, true),
            dim,
        }
    }

    /// Predict `[l_ρ, 2]` normalised coordinates.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, sample: &SampleInput) -> NodeId {
        let base = tape.leaf(sample.base_feats.clone());
        let x = self.in_proj.forward(tape, store, base);
        let enc = self.enc_gru.run_sequence(tape, store, x);
        let l = sample.input_len();
        let mut h = tape.select_rows(enc, l - 1, 1);
        // First "previous position" = first observed point.
        let mut prev = tape.leaf(Tensor::row(vec![
            sample.base_feats.get(0, 0),
            sample.base_feats.get(0, 1),
        ]));
        let mut outs = Vec::with_capacity(sample.target_len());
        for _ in 0..sample.target_len() {
            let ctx = self.attn.forward(tape, store, h, enc);
            let input = tape.concat_cols(&[ctx, prev]);
            h = self.dec_gru.step(tape, store, input, h);
            let xy = self.out.forward(tape, store, h);
            let xy = tape.sigmoid(xy); // coordinates are normalised to [0,1]
            outs.push(xy);
            prev = xy;
        }
        tape.concat_rows(&outs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureExtractor;
    use rand::SeedableRng;
    use rntrajrec_roadnet::{CityConfig, RTree, SyntheticCity};
    use rntrajrec_synth::{SimConfig, Simulator};

    struct Fixture {
        city: SyntheticCity,
        inputs: Vec<SampleInput>,
        grid_cells: usize,
        grid_cols: usize,
        grid_rows: usize,
    }

    fn fixture() -> Fixture {
        let city = SyntheticCity::generate(CityConfig::tiny());
        let rtree = RTree::build(&city.net);
        let grid = city.net.grid(50.0);
        let fx = FeatureExtractor::new(&city.net, &rtree, grid);
        let mut sim = Simulator::new(
            &city.net,
            SimConfig {
                target_len: 9,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(11);
        let inputs = (0..2)
            .map(|_| fx.extract(&sim.sample(&mut rng, 8)))
            .collect();
        Fixture {
            city,
            inputs,
            grid_cells: grid.num_cells(),
            grid_cols: grid.cols as usize,
            grid_rows: grid.rows as usize,
        }
    }

    fn check_encoder(enc: &dyn TrajEncoder, f: &Fixture) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store_rng = StdRng::seed_from_u64(2);
        let _ = &mut store_rng;
        let store = ParamStore::new();
        let _ = store;
        // Encoders are constructed by callers; here we just run them.
        let refs: Vec<&SampleInput> = f.inputs.iter().collect();
        let mut tape = Tape::new();
        // Trick: the encoder was constructed with its own store which the
        // caller passes here; tests call through `run_encoder` instead.
        let _ = (&mut tape, refs, &mut rng, enc);
    }

    #[test]
    fn all_sequence_encoders_produce_correct_shapes() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let d = 16;
        let encoders: Vec<Box<dyn TrajEncoder>> = vec![
            Box::new(MTrajRecEncoder::new(&mut store, &mut rng, f.grid_cells, d)),
            Box::new(TransformerBaseline::new(
                &mut store,
                &mut rng,
                f.grid_cells,
                d,
                2,
                2,
            )),
            Box::new(T2vecEncoder::new(&mut store, &mut rng, f.grid_cells, d)),
            Box::new(NeuTrajEncoder::new(
                &mut store,
                &mut rng,
                f.grid_cols,
                f.grid_rows,
                d,
            )),
            Box::new(T3sEncoder::new(&mut store, &mut rng, f.grid_cells, d, 2)),
            Box::new(GtsEncoder::new(&mut store, &mut rng, &f.city.net, d)),
        ];
        let refs: Vec<&SampleInput> = f.inputs.iter().collect();
        for enc in &encoders {
            let mut tape = Tape::new();
            let out = enc.encode(&mut tape, &store, &refs, true, &mut rng);
            assert_eq!(out.outputs.len(), refs.len(), "{}", enc.name());
            for (o, s) in out.outputs.iter().zip(&refs) {
                assert_eq!(
                    tape.value(o.per_point).shape(),
                    (s.input_len(), d),
                    "{} per-point",
                    enc.name()
                );
                assert_eq!(tape.value(o.traj).shape(), (1, d), "{} traj", enc.name());
                assert!(tape.value(o.per_point).all_finite(), "{}", enc.name());
            }
            assert!(
                out.aux_loss.is_none(),
                "{} must not have aux loss",
                enc.name()
            );
        }
        let _ = check_encoder;
    }

    #[test]
    fn encoder_names_are_distinct() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let encoders: Vec<Box<dyn TrajEncoder>> = vec![
            Box::new(MTrajRecEncoder::new(&mut store, &mut rng, f.grid_cells, 8)),
            Box::new(TransformerBaseline::new(
                &mut store,
                &mut rng,
                f.grid_cells,
                8,
                1,
                2,
            )),
            Box::new(T2vecEncoder::new(&mut store, &mut rng, f.grid_cells, 8)),
            Box::new(NeuTrajEncoder::new(
                &mut store,
                &mut rng,
                f.grid_cols,
                f.grid_rows,
                8,
            )),
            Box::new(T3sEncoder::new(&mut store, &mut rng, f.grid_cells, 8, 2)),
            Box::new(GtsEncoder::new(&mut store, &mut rng, &f.city.net, 8)),
        ];
        let names: std::collections::HashSet<&str> = encoders.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), encoders.len());
    }

    #[test]
    fn dhtr_outputs_normalised_positions() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let dhtr = DhtrSeq2Seq::new(&mut store, &mut rng, 16);
        let mut tape = Tape::new();
        let xy = dhtr.forward(&mut tape, &store, &f.inputs[0]);
        assert_eq!(tape.value(xy).shape(), (f.inputs[0].target_len(), 2));
        assert!(tape
            .value(xy)
            .data
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn dhtr_is_trainable_on_positions() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let dhtr = DhtrSeq2Seq::new(&mut store, &mut rng, 16);
        let mut opt = rntrajrec_nn::Adam::new(0.01);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..25 {
            let mut tape = Tape::new();
            let pred = dhtr.forward(&mut tape, &store, &f.inputs[0]);
            let target = tape.leaf(f.inputs[0].target_xy_norm.clone());
            let d = tape.sub(pred, target);
            let sq = tape.mul(d, d);
            let loss = tape.mean_all(sq);
            last = tape.value(loss).item();
            first.get_or_insert(last);
            store.zero_grad();
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!(
            last < first.unwrap(),
            "DHTR loss did not decrease: {first:?} -> {last}"
        );
    }

    #[test]
    fn neutraj_neighbor_cells_respect_borders() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let enc = NeuTrajEncoder::new(&mut store, &mut rng, f.grid_cols, f.grid_rows, 8);
        // Corner cell 0 has exactly two neighbours (right, up).
        let n = enc.neighbor_cells(0);
        assert_eq!(n.len(), 2);
        assert!(n.contains(&1) && n.contains(&f.grid_cols));
        // Interior cell has four.
        let interior = f.grid_cols + 1;
        assert_eq!(enc.neighbor_cells(interior).len(), 4);
        // All indices in range.
        for flat in [0, interior, f.grid_cols * f.grid_rows - 1] {
            for c in enc.neighbor_cells(flat) {
                assert!(c < f.grid_cols * f.grid_rows);
            }
        }
    }
}
