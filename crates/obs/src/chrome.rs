//! Chrome trace-event JSON export.
//!
//! Renders [`SpanRecord`]s as the trace-event format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): complete
//! (`"ph": "X"`) events with microsecond timestamps, plus metadata
//! events naming processes and threads.
//!
//! Lanes: **pid = request id**, so each request gets its own process
//! group in the viewer and a span shared by a fused batch (e.g.
//! `encoder.fused`) appears once under every member request. **tid** is
//! the recording thread's synthetic id, so within a request you can see
//! which phases ran on the HTTP worker vs. the engine worker. Spans
//! outside any request are grouped under pid 0.

use crate::span::{thread_names, SpanRecord};
use serde_json::{json, Value};

/// Render `spans` as a Chrome trace-event JSON document
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut events: Vec<Value> = Vec::new();
    let mut lanes: Vec<(u64, u64)> = Vec::new(); // (pid, tid) pairs seen
    let mut pids: Vec<u64> = Vec::new();
    for span in spans {
        let name = match span.index {
            Some(i) => format!("{}[{i}]", span.name),
            None => span.name.to_string(),
        };
        let ts_us = span.start_ns as f64 / 1_000.0;
        let dur_us = span.dur_ns() as f64 / 1_000.0;
        let span_pids: &[u64] = if span.requests.is_empty() {
            &[0]
        } else {
            &span.requests
        };
        for &pid in span_pids {
            if !pids.contains(&pid) {
                pids.push(pid);
            }
            if !lanes.contains(&(pid, span.thread)) {
                lanes.push((pid, span.thread));
            }
            events.push(json!({
                "name": name.clone(),
                "cat": "serve",
                "ph": "X",
                "ts": ts_us,
                "dur": dur_us,
                "pid": pid,
                "tid": span.thread,
                "args": json!({
                    "span": span.id,
                    "parent": span.parent,
                    "matmuls": span.matmuls,
                    "flops": span.flops,
                    "shared_by": span.requests.len().max(1),
                }),
            }));
        }
    }
    let names = thread_names();
    for &pid in &pids {
        let label = if pid == 0 {
            "untraced".to_string()
        } else {
            format!("request {pid}")
        };
        events.push(json!({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0u64,
            "args": json!({ "name": label }),
        }));
    }
    for &(pid, tid) in &lanes {
        let label = names
            .iter()
            .find(|(id, _)| *id == tid)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| format!("thread-{tid}"));
        events.push(json!({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": json!({ "name": label }),
        }));
    }
    let doc = json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    });
    serde_json::to_string(&doc).expect("trace JSON renders")
}
