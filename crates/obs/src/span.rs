//! The span recorder: thread-local span stacks feeding per-thread
//! buffers, flushed into one bounded global store when a root span
//! closes. See the crate docs for the span model.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Identifies one HTTP request across every layer it touches. Minted at
/// HTTP accept with [`next_request_id`]; `0` never names a real request.
pub type RequestId = u64;

/// Name of the synthetic root span recorded once per traced request; a
/// request is *complete* (eligible for [`completed_requests`] and the
/// Chrome export) once a span with this name carries its id.
pub const ROOT_SPAN: &str = "request";

/// Tracing master switch. Spans/kernel events are recorded only while
/// enabled; flipping it is safe at any time (spans opened while enabled
/// still close correctly after it is cleared).
static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_REQUEST: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

/// Completed spans a thread batches locally before flushing; bounds how
/// stale the global store can be while a deep tree is still open.
const FLUSH_AT: usize = 64;

/// Default bound on the global store (oldest spans evicted beyond it).
const DEFAULT_CAPACITY: usize = 1 << 16;

/// Enable or disable span recording process-wide (default: disabled).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether span recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Mint a fresh, process-unique request id (monotone from 1).
pub fn next_request_id() -> RequestId {
    NEXT_REQUEST.fetch_add(1, Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (the first clock use).
/// Monotonic: taken from [`Instant`], never wall time.
#[inline]
pub fn now_ns() -> u64 {
    instant_ns(Instant::now())
}

/// Convert an [`Instant`] captured elsewhere (e.g. an engine enqueue
/// timestamp) to trace-epoch nanoseconds. Instants before the epoch
/// saturate to 0.
#[inline]
pub fn instant_ns(t: Instant) -> u64 {
    t.checked_duration_since(epoch())
        .map_or(0, |d| d.as_nanos() as u64)
}

/// One completed span. `requests` lists every request the span worked
/// for — per-request phases carry one id, fused-batch spans carry all
/// member ids, and spans outside any request scope carry none.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (monotone from 1).
    pub id: u64,
    /// Enclosing span's id on the same thread, or 0 for a root.
    pub parent: u64,
    /// Phase name (`"encoder.fused"`, `"decoder.step"`, ...).
    pub name: &'static str,
    /// Per-iteration index (decoder step number); `None` elsewhere.
    pub index: Option<u32>,
    /// Requests this span is attributed to.
    pub requests: Vec<RequestId>,
    /// Start, in trace-epoch nanoseconds.
    pub start_ns: u64,
    /// End, in trace-epoch nanoseconds (`>= start_ns`).
    pub end_ns: u64,
    /// Synthetic id of the recording thread (see [`thread_names`]).
    pub thread: u64,
    /// Matmul kernel invocations attributed to this span (innermost
    /// enclosing span only — parents do not double-count children).
    pub matmuls: u64,
    /// Estimated floating-point operations for those matmuls.
    pub flops: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

struct ActiveSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    index: Option<u32>,
    requests: Vec<RequestId>,
    start_ns: u64,
    matmuls: u64,
    flops: u64,
}

struct ThreadCtx {
    thread_id: u64,
    requests: Vec<RequestId>,
    stack: Vec<ActiveSpan>,
    buffer: Vec<SpanRecord>,
}

impl ThreadCtx {
    fn new() -> Self {
        let thread_id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map(|n| n.to_string())
            .unwrap_or_else(|| format!("thread-{thread_id}"));
        thread_registry().lock().unwrap().push((thread_id, name));
        Self {
            thread_id,
            requests: Vec::new(),
            stack: Vec::new(),
            buffer: Vec::new(),
        }
    }
}

thread_local! {
    static CTX: RefCell<ThreadCtx> = RefCell::new(ThreadCtx::new());
}

fn thread_registry() -> &'static Mutex<Vec<(u64, String)>> {
    static REG: OnceLock<Mutex<Vec<(u64, String)>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Snapshot of `(synthetic thread id, thread name)` for every thread that
/// has recorded a span (used by the Chrome exporter's metadata events).
pub fn thread_names() -> Vec<(u64, String)> {
    thread_registry().lock().unwrap().clone()
}

struct Store {
    spans: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| {
        Mutex::new(Store {
            spans: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
        })
    })
}

fn flush_buffer(buffer: &mut Vec<SpanRecord>) {
    if buffer.is_empty() {
        return;
    }
    let mut store = store().lock().unwrap();
    for span in buffer.drain(..) {
        if store.spans.len() >= store.capacity {
            store.spans.pop_front();
            store.dropped += 1;
        }
        store.spans.push_back(span);
    }
}

/// RAII guard for one span; the span closes (and is buffered for the
/// store) when the guard drops. A no-op (zero allocation) when tracing
/// is disabled.
#[must_use = "the span closes when this guard drops"]
pub struct SpanGuard {
    /// Span id, or 0 when recording was disabled at open.
    id: u64,
}

/// Open a span named `name` on the current thread, nested under the
/// innermost open span and attributed to the active [`request_scope`]'s
/// request ids.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    open_span(name, None)
}

/// [`span`], tagged with a per-iteration index (e.g. the decoder step
/// number, rendered as `decoder.step[i]` in the Chrome export).
#[inline]
pub fn span_indexed(name: &'static str, index: u32) -> SpanGuard {
    open_span(name, Some(index))
}

fn open_span(name: &'static str, index: Option<u32>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { id: 0 };
    }
    let start_ns = now_ns();
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let _ = CTX.try_with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        let parent = ctx.stack.last().map_or(0, |s| s.id);
        let requests = ctx.requests.clone();
        ctx.stack.push(ActiveSpan {
            id,
            parent,
            name,
            index,
            requests,
            start_ns,
            matmuls: 0,
            flops: 0,
        });
    });
    SpanGuard { id }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let end_ns = now_ns();
        let _ = CTX.try_with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            // RAII makes drops LIFO; if a guard leaked (mem::forget),
            // close everything above it so the stack cannot wedge.
            while let Some(active) = ctx.stack.pop() {
                let done = active.id == self.id;
                let record = SpanRecord {
                    id: active.id,
                    parent: active.parent,
                    name: active.name,
                    index: active.index,
                    requests: active.requests,
                    start_ns: active.start_ns,
                    end_ns,
                    thread: ctx.thread_id,
                    matmuls: active.matmuls,
                    flops: active.flops,
                };
                ctx.buffer.push(record);
                if done {
                    break;
                }
            }
            if ctx.buffer.len() >= FLUSH_AT || (ctx.stack.is_empty() && ctx.requests.is_empty()) {
                flush_buffer(&mut ctx.buffer);
            }
        });
    }
}

/// RAII guard from [`request_scope`]; restores the previous request
/// attribution and flushes this thread's buffered spans on drop.
#[must_use = "attribution reverts when this guard drops"]
pub struct RequestScope {
    prev: Vec<RequestId>,
    armed: bool,
}

/// Attribute every span and kernel event recorded on this thread to
/// `requests` until the returned guard drops. Engine workers wrap each
/// fused batch in one scope carrying all member ids; the guard's drop
/// flushes the thread buffer, so batch spans are globally visible
/// *before* results are delivered if the scope is dropped first.
pub fn request_scope(requests: &[RequestId]) -> RequestScope {
    if !enabled() {
        return RequestScope {
            prev: Vec::new(),
            armed: false,
        };
    }
    let prev = CTX
        .try_with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            std::mem::replace(&mut ctx.requests, requests.to_vec())
        })
        .unwrap_or_default();
    RequestScope { prev, armed: true }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let prev = std::mem::take(&mut self.prev);
        let _ = CTX.try_with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            ctx.requests = prev;
            flush_buffer(&mut ctx.buffer);
        });
    }
}

/// Record a span whose endpoints were measured elsewhere (possibly on
/// another thread), e.g. `queue.wait` between an HTTP worker's enqueue
/// and an engine worker's batch take. Attributed to `requests` when
/// non-empty, else to the thread's active request scope. Flushes
/// immediately when no span is open on this thread.
pub fn record(name: &'static str, requests: &[RequestId], start_ns: u64, end_ns: u64) {
    if !enabled() {
        return;
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let _ = CTX.try_with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        let requests = if requests.is_empty() {
            ctx.requests.clone()
        } else {
            requests.to_vec()
        };
        let record = SpanRecord {
            id,
            parent: ctx.stack.last().map_or(0, |s| s.id),
            name,
            index: None,
            requests,
            start_ns,
            end_ns: end_ns.max(start_ns),
            thread: ctx.thread_id,
            matmuls: 0,
            flops: 0,
        };
        ctx.buffer.push(record);
        if ctx.buffer.len() >= FLUSH_AT || ctx.stack.is_empty() {
            flush_buffer(&mut ctx.buffer);
        }
    });
}

/// Attribute `matmuls` kernel invocations (`flops` estimated floating
/// point ops) to the innermost open span on this thread. Called by
/// `nn::kernels` on the *caller* thread at kernel entry — the thread
/// pool only distributes inner chunks, so attribution is exact. A single
/// relaxed load when tracing is disabled; a no-op with no open span.
#[inline]
pub fn kernel_event(matmuls: u64, flops: u64) {
    if !enabled() {
        return;
    }
    let _ = CTX.try_with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        if let Some(top) = ctx.stack.last_mut() {
            top.matmuls += matmuls;
            top.flops += flops;
        }
    });
}

/// Remove and return every span in the global store (oldest first).
pub fn drain() -> Vec<SpanRecord> {
    let mut store = store().lock().unwrap();
    store.spans.drain(..).collect()
}

/// Spans for the most recent `last` *completed* requests (those whose
/// [`ROOT_SPAN`] has reached the store), newest request ids last. Every
/// span attributed to any selected request is returned once, even when
/// shared with unselected requests.
pub fn completed_requests(last: usize) -> Vec<SpanRecord> {
    let store = store().lock().unwrap();
    let mut roots: Vec<RequestId> = store
        .spans
        .iter()
        .filter(|s| s.name == ROOT_SPAN)
        .flat_map(|s| s.requests.iter().copied())
        .collect();
    roots.sort_unstable();
    roots.dedup();
    if roots.len() > last {
        let cut = roots.len() - last;
        roots.drain(..cut);
    }
    store
        .spans
        .iter()
        .filter(|s| s.requests.iter().any(|r| roots.binary_search(r).is_ok()))
        .cloned()
        .collect()
}

/// Number of spans currently held in the global store.
pub fn stored_spans() -> usize {
    store().lock().unwrap().spans.len()
}

/// Spans evicted from the store because it was at capacity.
pub fn dropped_spans() -> u64 {
    store().lock().unwrap().dropped
}

/// Clear the global store (spans and the dropped counter). Buffered
/// spans on other threads are unaffected. Intended for tests/benches.
pub fn clear() {
    let mut store = store().lock().unwrap();
    store.spans.clear();
    store.dropped = 0;
}

/// Resize the global store bound; evicts oldest spans immediately if the
/// new capacity is smaller than the current population.
pub fn set_capacity(capacity: usize) {
    let mut store = store().lock().unwrap();
    store.capacity = capacity.max(1);
    while store.spans.len() > store.capacity {
        store.spans.pop_front();
        store.dropped += 1;
    }
}
