//! Dependency-free observability for the RNTrajRec serving stack.
//!
//! Four pieces, each usable on its own:
//!
//! * [`span`] / [`request_scope`] / [`record`] — a lock-light structured
//!   span recorder. Threads push spans onto a thread-local stack and batch
//!   completed [`SpanRecord`]s into a thread-local buffer; buffers flush
//!   into one bounded global store only when a root span closes (or the
//!   buffer fills), so the hot path takes no lock. When tracing is
//!   disabled ([`set_enabled`]`(false)`, the default) every entry point is
//!   a single relaxed atomic load and **zero allocation**.
//! * [`metrics`] — Prometheus histograms (atomic buckets, lock-free
//!   observe) with a process-wide registry and text-format rendering.
//!   Histograms are always on; they do not depend on the tracing flag.
//! * [`chrome`] — render stored spans as Chrome trace-event JSON that
//!   loads directly in `chrome://tracing` or Perfetto. One process lane
//!   per request id, so a fused batch shows the same kernel spans under
//!   every member request.
//! * [`promlint`] — a Prometheus text-exposition lint used by tests and
//!   CI to validate everything `/metrics` serves.
//!
//! ## Span model
//!
//! A request's life is a tree keyed by a [`RequestId`] minted at HTTP
//! accept ([`next_request_id`]):
//!
//! ```text
//! request
//! ├── http.read
//! ├── parse
//! ├── queue.wait
//! ├── batch.assemble        (shared: carries every member's request id)
//! ├── encoder.fused         (shared)
//! ├── decoder.fused         (shared)
//! │   ├── decoder.step[0]
//! │   └── decoder.step[i]
//! ├── serialize
//! └── http.write
//! ```
//!
//! Engine workers wrap a fused batch in [`request_scope`] so every span
//! they open (and every kernel event, see [`kernel_event`]) is attributed
//! to all member requests. Cross-thread phases whose endpoints live on
//! different threads (queue wait spans the submitting HTTP worker and the
//! engine worker) are recorded with explicit timestamps via [`record`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chrome;
pub mod metrics;
pub mod promlint;
mod span;

pub use chrome::chrome_trace;
pub use span::{
    clear, completed_requests, drain, dropped_spans, enabled, instant_ns, kernel_event,
    next_request_id, now_ns, record, request_scope, set_capacity, set_enabled, span, span_indexed,
    stored_spans, RequestId, RequestScope, SpanGuard, SpanRecord, ROOT_SPAN,
};
