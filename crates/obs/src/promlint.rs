//! A Prometheus text-exposition lint.
//!
//! Validates what `/metrics` actually serves — tests and CI pipe a live
//! scrape through [`lint`] and fail on any finding. Checked rules:
//!
//! * every sample's family has a `# TYPE` line, and it appears **before**
//!   the family's first sample;
//! * at most one `# TYPE` / `# HELP` line per family;
//! * metric names and label names match the Prometheus charset;
//! * sample values parse as finite floats; no duplicate series
//!   (identical name + label set);
//! * histogram families: per label-set, cumulative `_bucket` counts are
//!   monotone non-decreasing in `le`, a `le="+Inf"` bucket exists, and
//!   `_sum`/`_count` samples exist with `_count` equal to the `+Inf`
//!   bucket.

use std::collections::{BTreeMap, BTreeSet};

/// One parsed sample line.
struct Sample {
    name: String,
    /// Sorted `(label, value)` pairs.
    labels: Vec<(String, String)>,
    value: f64,
    line_no: usize,
}

/// Lint `text` (a full exposition document); returns human-readable
/// findings, empty when the document is clean.
pub fn lint(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut types: BTreeMap<String, (String, usize)> = BTreeMap::new(); // family -> (type, line)
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut samples: Vec<Sample> = Vec::new();
    let mut first_sample_line: BTreeMap<String, usize> = BTreeMap::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let family = parts.next().unwrap_or("").to_string();
            let kind = parts.next().unwrap_or("").to_string();
            if family.is_empty() || kind.is_empty() {
                errors.push(format!("line {line_no}: malformed TYPE line"));
                continue;
            }
            if let std::collections::btree_map::Entry::Vacant(e) = types.entry(family.clone()) {
                e.insert((kind, line_no));
            } else {
                errors.push(format!("line {line_no}: duplicate TYPE for {family}"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let family = rest.split(' ').next().unwrap_or("").to_string();
            if !helps.insert(family.clone()) {
                errors.push(format!("line {line_no}: duplicate HELP for {family}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        match parse_sample(line, line_no) {
            Ok(sample) => {
                first_sample_line
                    .entry(family_of(&sample.name, &types))
                    .or_insert(line_no);
                samples.push(sample);
            }
            Err(e) => errors.push(e),
        }
    }

    // Name charset + duplicate series.
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for s in &samples {
        if !valid_metric_name(&s.name) {
            errors.push(format!(
                "line {}: invalid metric name {}",
                s.line_no, s.name
            ));
        }
        for (k, _) in &s.labels {
            if !valid_label_name(k) {
                errors.push(format!("line {}: invalid label name {k}", s.line_no));
            }
        }
        let key = format!("{}{:?}", s.name, s.labels);
        if !seen.insert(key) {
            errors.push(format!(
                "line {}: duplicate series {} {:?}",
                s.line_no, s.name, s.labels
            ));
        }
    }

    // TYPE before samples, for every family that has samples.
    for (family, first_line) in &first_sample_line {
        match types.get(family) {
            None => errors.push(format!(
                "family {family}: samples (first at line {first_line}) with no TYPE line"
            )),
            Some((_, type_line)) if type_line > first_line => errors.push(format!(
                "family {family}: TYPE at line {type_line} after first sample at line {first_line}"
            )),
            Some(_) => {}
        }
    }

    // Histogram shape checks.
    for (family, (kind, _)) in &types {
        if kind != "histogram" {
            continue;
        }
        check_histogram(family, &samples, &mut errors);
    }

    errors
}

/// Resolve a sample name to its family: histogram suffixes fold into the
/// declared histogram family when one exists.
fn family_of(name: &str, types: &BTreeMap<String, (String, usize)>) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(prefix) = name.strip_suffix(suffix) {
            if types
                .get(prefix)
                .is_some_and(|(kind, _)| kind == "histogram" || kind == "summary")
            {
                return prefix.to_string();
            }
        }
    }
    name.to_string()
}

fn check_histogram(family: &str, samples: &[Sample], errors: &mut Vec<String>) {
    let bucket_name = format!("{family}_bucket");
    // Group buckets by the label set minus `le`.
    let mut groups: BTreeMap<String, Vec<(f64, u64, String)>> = BTreeMap::new();
    for s in samples.iter().filter(|s| s.name == bucket_name) {
        let le = match s.labels.iter().find(|(k, _)| k == "le") {
            Some((_, v)) => v.clone(),
            None => {
                errors.push(format!(
                    "line {}: {bucket_name} sample without le label",
                    s.line_no
                ));
                continue;
            }
        };
        let bound = if le == "+Inf" {
            f64::INFINITY
        } else {
            match le.parse::<f64>() {
                Ok(b) => b,
                Err(_) => {
                    errors.push(format!("line {}: unparseable le=\"{le}\"", s.line_no));
                    continue;
                }
            }
        };
        let rest: Vec<_> = s.labels.iter().filter(|(k, _)| k != "le").collect();
        groups
            .entry(format!("{rest:?}"))
            .or_default()
            .push((bound, s.value as u64, le));
    }
    for (labels, mut buckets) in groups {
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le bounds are comparable"));
        let mut prev = 0u64;
        for (_, count, le) in &buckets {
            if *count < prev {
                errors.push(format!(
                    "{family}{labels}: bucket le=\"{le}\" count {count} below previous {prev} (not cumulative)"
                ));
            }
            prev = *count;
        }
        let inf = buckets.iter().find(|(b, _, _)| b.is_infinite());
        match inf {
            None => errors.push(format!("{family}{labels}: missing le=\"+Inf\" bucket")),
            Some((_, inf_count, _)) => {
                // _count for the same label set must equal the +Inf bucket.
                let count_sample = samples.iter().find(|s| {
                    s.name == format!("{family}_count")
                        && format!("{:?}", s.labels.iter().collect::<Vec<_>>()) == labels
                });
                match count_sample {
                    None => errors.push(format!("{family}{labels}: missing _count sample")),
                    Some(c) if c.value as u64 != *inf_count => errors.push(format!(
                        "{family}{labels}: _count {} != +Inf bucket {inf_count}",
                        c.value
                    )),
                    Some(_) => {}
                }
            }
        }
        let has_sum = samples.iter().any(|s| {
            s.name == format!("{family}_sum")
                && format!("{:?}", s.labels.iter().collect::<Vec<_>>()) == labels
        });
        if !has_sum {
            errors.push(format!("{family}{labels}: missing _sum sample"));
        }
    }
}

fn parse_sample(line: &str, line_no: usize) -> Result<Sample, String> {
    let (name_and_labels, value_str) = match line.rfind(' ') {
        Some(i) => (&line[..i], line[i + 1..].trim()),
        None => return Err(format!("line {line_no}: no value on sample line")),
    };
    let value = value_str
        .parse::<f64>()
        .map_err(|_| format!("line {line_no}: unparseable value {value_str}"))?;
    if !value.is_finite() {
        return Err(format!("line {line_no}: non-finite value {value_str}"));
    }
    let name_and_labels = name_and_labels.trim();
    let (name, labels) = match name_and_labels.find('{') {
        None => (name_and_labels.to_string(), Vec::new()),
        Some(open) => {
            let name = name_and_labels[..open].to_string();
            let rest = &name_and_labels[open + 1..];
            let close = rest
                .rfind('}')
                .ok_or_else(|| format!("line {line_no}: unterminated label set"))?;
            (name, parse_labels(&rest[..close], line_no)?)
        }
    };
    let mut labels = labels;
    labels.sort();
    Ok(Sample {
        name,
        labels,
        value,
        line_no,
    })
}

fn parse_labels(body: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without ="))?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        if !after.starts_with('"') {
            return Err(format!("line {line_no}: unquoted label value"));
        }
        // Scan for the closing quote, honouring backslash escapes.
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, esc)) = chars.next() {
                        value.push(match esc {
                            'n' => '\n',
                            other => other,
                        });
                    }
                }
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        labels.push((key, value));
        rest = after[1 + end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("line {line_no}: junk after label value: {rest}"));
        }
    }
    Ok(labels)
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}
