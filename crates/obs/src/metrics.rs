//! Prometheus histograms with a process-wide registry.
//!
//! [`Histogram::observe`] is lock-free (atomic bucket counters, a CAS
//! loop for the sum) and histograms are **always on** — unlike spans
//! they do not depend on the tracing flag, because a histogram bump is a
//! handful of atomics and serving dashboards need them unconditionally.
//!
//! Families registered here render in exposition format via [`render`]
//! (with `# HELP`/`# TYPE` headers, cumulative `_bucket{le=...}` lines,
//! `_sum` and `_count`); the serve crate appends this to `/metrics`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Default buckets for phase latencies, in seconds (100 µs – 10 s).
pub const DURATION_BUCKETS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// Buckets for micro-batch sizes (members per fused batch).
pub const BATCH_SIZE_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Buckets for batch occupancy (`batch_size / max_batch`, in (0, 1]).
pub const OCCUPANCY_BUCKETS: &[f64] = &[0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0];

/// A fixed-bucket histogram. Buckets store *non-cumulative* counts
/// internally (one atomic add per observe) and render cumulatively.
#[derive(Debug)]
pub struct Histogram {
    /// Ascending upper bounds; one extra internal bucket catches
    /// observations above the last bound (`+Inf`).
    upper: Box<[f64]>,
    counts: Box<[AtomicU64]>,
    /// Sum of observed values, stored as f64 bits (CAS loop).
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(upper: &[f64]) -> Self {
        assert!(!upper.is_empty(), "histogram needs at least one bucket");
        assert!(
            upper.windows(2).all(|w| w[0] < w[1]),
            "histogram buckets must be strictly increasing"
        );
        let counts = (0..upper.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self {
            upper: upper.into(),
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .upper
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.upper.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Record a duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Render this histogram's sample lines (cumulative buckets, `_sum`,
    /// `_count`). `extra_label` is emitted before `le` on bucket lines.
    /// The `+Inf` bucket and `_count` come from one snapshot, so they
    /// are always equal even under concurrent observes.
    fn render_into(&self, out: &mut String, name: &str, extra_label: Option<(&str, &str)>) {
        let snapshot: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let label_prefix = match extra_label {
            Some((k, v)) => format!("{k}=\"{}\",", escape_label(v)),
            None => String::new(),
        };
        let mut cumulative = 0u64;
        for (i, bound) in self.upper.iter().enumerate() {
            cumulative += snapshot[i];
            out.push_str(&format!(
                "{name}_bucket{{{label_prefix}le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        cumulative += snapshot[self.upper.len()];
        out.push_str(&format!(
            "{name}_bucket{{{label_prefix}le=\"+Inf\"}} {cumulative}\n"
        ));
        let series_suffix = match extra_label {
            Some((k, v)) => format!("{{{k}=\"{}\"}}", escape_label(v)),
            None => String::new(),
        };
        out.push_str(&format!("{name}_sum{series_suffix} {}\n", self.sum()));
        out.push_str(&format!("{name}_count{series_suffix} {cumulative}\n"));
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// One registered series: its `(label name, label value)` pair
/// (`None` = unlabelled) and the histogram behind it.
type Series = (Option<(&'static str, String)>, Arc<Histogram>);

struct Family {
    name: &'static str,
    help: &'static str,
    series: Vec<Series>,
}

fn registry() -> &'static Mutex<Vec<Family>> {
    static REG: OnceLock<Mutex<Vec<Family>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Get or create the unlabelled histogram `name`. Buckets and help text
/// are fixed by the first caller; later calls reuse the existing series.
pub fn histogram(name: &'static str, help: &'static str, buckets: &[f64]) -> Arc<Histogram> {
    series(name, help, None, buckets)
}

/// Get or create the series of histogram family `name` with label
/// `label_name="label_value"` (e.g. `phase="encoder"`).
pub fn labeled_histogram(
    name: &'static str,
    help: &'static str,
    label_name: &'static str,
    label_value: &str,
    buckets: &[f64],
) -> Arc<Histogram> {
    series(name, help, Some((label_name, label_value)), buckets)
}

fn series(
    name: &'static str,
    help: &'static str,
    label: Option<(&'static str, &str)>,
    buckets: &[f64],
) -> Arc<Histogram> {
    let mut reg = registry().lock().unwrap();
    let family = match reg.iter_mut().find(|f| f.name == name) {
        Some(f) => f,
        None => {
            reg.push(Family {
                name,
                help,
                series: Vec::new(),
            });
            reg.last_mut().expect("just pushed")
        }
    };
    let wanted = label.map(|(k, v)| (k, v.to_string()));
    if let Some((_, h)) = family.series.iter().find(|(l, _)| *l == wanted) {
        return Arc::clone(h);
    }
    let h = Arc::new(Histogram::new(buckets));
    family.series.push((wanted, Arc::clone(&h)));
    Arc::clone(&h)
}

/// The per-phase latency series `rntrajrec_phase_seconds{phase=...}`
/// (shared buckets, seconds). Call sites cache the returned `Arc`.
pub fn phase_seconds(phase: &'static str) -> Arc<Histogram> {
    labeled_histogram(
        "rntrajrec_phase_seconds",
        "Time spent per request-lifecycle phase, in seconds.",
        "phase",
        phase,
        DURATION_BUCKETS,
    )
}

/// The fused micro-batch size histogram `rntrajrec_batch_size`.
pub fn batch_size() -> Arc<Histogram> {
    histogram(
        "rntrajrec_batch_size",
        "Members per fused micro-batch.",
        BATCH_SIZE_BUCKETS,
    )
}

/// The streaming-serving latency KPI
/// `rntrajrec_time_to_first_step_seconds`: submit → first decoded step
/// delivered (what continuous batching optimises, vs. full-response
/// latency for closed batches).
pub fn time_to_first_step() -> Arc<Histogram> {
    histogram(
        "rntrajrec_time_to_first_step_seconds",
        "Submit-to-first-decoded-step latency, in seconds.",
        DURATION_BUCKETS,
    )
}

/// The batch occupancy histogram `rntrajrec_batch_occupancy`
/// (`batch_size / max_batch`).
pub fn batch_occupancy() -> Arc<Histogram> {
    histogram(
        "rntrajrec_batch_occupancy",
        "Fused batch size as a fraction of the configured max batch.",
        OCCUPANCY_BUCKETS,
    )
}

/// Render every registered histogram family in Prometheus text
/// exposition format (`# HELP`, `# TYPE histogram`, samples).
pub fn render() -> String {
    let mut out = String::new();
    render_into(&mut out);
    out
}

/// [`render`], appending to an existing buffer.
pub fn render_into(out: &mut String) {
    let reg = registry().lock().unwrap();
    for family in reg.iter() {
        out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
        out.push_str(&format!("# TYPE {} histogram\n", family.name));
        for (label, h) in &family.series {
            let extra = label.as_ref().map(|(k, v)| (*k, v.as_str()));
            h.render_into(out, family.name, extra);
        }
    }
}
