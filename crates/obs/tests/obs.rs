//! Observability crate tests. The span store, tracing flag, and metrics
//! registry are process-global, so every test that touches them runs
//! under one mutex.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use rntrajrec_obs as obs;

static SEQUENTIAL: Mutex<()> = Mutex::new(());

/// Serialize tests and reset global tracing state.
fn tracing_test() -> MutexGuard<'static, ()> {
    let guard = SEQUENTIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    obs::set_enabled(true);
    obs::set_capacity(1 << 16);
    obs::clear();
    guard
}

#[test]
fn disabled_recorder_stores_nothing() {
    let _guard = tracing_test();
    obs::set_enabled(false);
    {
        let _root = obs::span("request");
        let _child = obs::span("encoder.fused");
        obs::kernel_event(3, 300);
        obs::record("queue.wait", &[1], 0, 10);
    }
    assert_eq!(obs::stored_spans(), 0);
}

#[test]
fn span_tree_has_expected_nesting_and_non_overlapping_children() {
    let _guard = tracing_test();
    let req = obs::next_request_id();
    {
        let _scope = obs::request_scope(&[req]);
        let _root = obs::span("request");
        {
            let _enc = obs::span("encoder.fused");
            obs::kernel_event(2, 512);
        }
        {
            let _dec = obs::span("decoder.fused");
            for i in 0..3u32 {
                let _step = obs::span_indexed("decoder.step", i);
                obs::kernel_event(1, 64);
            }
        }
    }
    let spans = obs::completed_requests(1);
    assert_eq!(spans.len(), 6, "request + encoder + decoder + 3 steps");
    let root = spans.iter().find(|s| s.name == obs::ROOT_SPAN).unwrap();
    assert_eq!(root.parent, 0);
    assert_eq!(root.requests, vec![req]);

    // encoder.fused and decoder.fused nest directly under the root and
    // do not overlap each other.
    let enc = spans.iter().find(|s| s.name == "encoder.fused").unwrap();
    let dec = spans.iter().find(|s| s.name == "decoder.fused").unwrap();
    for child in [enc, dec] {
        assert_eq!(child.parent, root.id);
        assert!(child.start_ns >= root.start_ns && child.end_ns <= root.end_ns);
    }
    assert!(enc.end_ns <= dec.start_ns, "siblings must not overlap");

    // Steps nest under decoder.fused, carry indices 0..3 in order, and
    // are pairwise non-overlapping inside the parent interval.
    let mut steps: Vec<_> = spans.iter().filter(|s| s.name == "decoder.step").collect();
    steps.sort_by_key(|s| s.index);
    assert_eq!(steps.len(), 3);
    for (i, step) in steps.iter().enumerate() {
        assert_eq!(step.parent, dec.id);
        assert_eq!(step.index, Some(i as u32));
        assert!(step.start_ns >= dec.start_ns && step.end_ns <= dec.end_ns);
        if i > 0 {
            assert!(
                steps[i - 1].end_ns <= step.start_ns,
                "steps must not overlap"
            );
        }
    }

    // Kernel events attribute to the innermost open span only.
    assert_eq!(enc.matmuls, 2);
    assert_eq!(enc.flops, 512);
    assert_eq!(dec.matmuls, 0, "parent must not double-count child kernels");
    assert!(steps.iter().all(|s| s.matmuls == 1 && s.flops == 64));
    assert_eq!(root.matmuls, 0);
}

#[test]
fn explicit_record_and_request_completion_gating() {
    let _guard = tracing_test();
    let first = obs::next_request_id();
    let second = obs::next_request_id();
    obs::record("queue.wait", &[first], 100, 200);
    // No root span yet -> not a completed request.
    assert!(obs::completed_requests(8).is_empty());
    obs::record(obs::ROOT_SPAN, &[first], 0, 300);
    obs::record("queue.wait", &[second], 400, 450);
    let spans = obs::completed_requests(8);
    assert_eq!(spans.len(), 2, "second request has no root yet");
    assert!(spans.iter().all(|s| s.requests == vec![first]));
    let wait = spans.iter().find(|s| s.name == "queue.wait").unwrap();
    assert_eq!((wait.start_ns, wait.end_ns), (100, 200));
}

#[test]
fn batch_spans_are_shared_across_member_requests() {
    let _guard = tracing_test();
    let a = obs::next_request_id();
    let b = obs::next_request_id();
    {
        let _scope = obs::request_scope(&[a, b]);
        let _batch = obs::span("batch.assemble");
    }
    obs::record(obs::ROOT_SPAN, &[a], 0, 10);
    let spans = obs::completed_requests(1);
    let batch = spans.iter().find(|s| s.name == "batch.assemble").unwrap();
    assert_eq!(batch.requests, vec![a, b]);
}

#[test]
fn store_capacity_evicts_oldest_and_counts_drops() {
    let _guard = tracing_test();
    obs::set_capacity(4);
    for i in 0..10u64 {
        obs::record("queue.wait", &[i + 1], i, i + 1);
    }
    assert_eq!(obs::stored_spans(), 4);
    assert_eq!(obs::dropped_spans(), 6);
    let spans = obs::drain();
    assert_eq!(spans.len(), 4);
    assert!(
        spans.iter().all(|s| s.start_ns >= 6),
        "oldest evicted first"
    );
    assert_eq!(obs::stored_spans(), 0);
}

#[test]
fn chrome_trace_is_valid_json_with_one_lane_per_request() {
    let _guard = tracing_test();
    let a = obs::next_request_id();
    let b = obs::next_request_id();
    {
        let _scope = obs::request_scope(&[a, b]);
        let _enc = obs::span("encoder.fused");
        obs::kernel_event(5, 1000);
    }
    obs::record(obs::ROOT_SPAN, &[a], 0, 50);
    obs::record(obs::ROOT_SPAN, &[b], 0, 60);
    let json = obs::chrome::chrome_trace(&obs::completed_requests(2));
    let doc = serde_json::from_str(&json).expect("chrome trace parses");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    // encoder.fused appears once per member request lane.
    let enc: Vec<_> = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("encoder.fused"))
        .collect();
    assert_eq!(enc.len(), 2);
    let pids: Vec<u64> = enc
        .iter()
        .map(|e| e.get("pid").unwrap().as_u64().unwrap())
        .collect();
    assert!(pids.contains(&a) && pids.contains(&b));
    for e in &enc {
        let args = e.get("args").unwrap();
        assert_eq!(args.get("matmuls").unwrap().as_u64(), Some(5));
        assert_eq!(args.get("flops").unwrap().as_u64(), Some(1000));
        assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
    }
    // Metadata names each request's process lane.
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(|p| p.as_str()) == Some("M")
            && e.get("name").and_then(|n| n.as_str()) == Some("process_name")
    }));
}

#[test]
fn histograms_render_cleanly_and_pass_the_lint() {
    let _guard = tracing_test();
    let phase = obs::metrics::phase_seconds("obs_test_phase");
    phase.observe_duration(Duration::from_micros(150));
    phase.observe(0.002);
    phase.observe(99.0); // above every bound -> +Inf bucket
    let sizes = obs::metrics::batch_size();
    sizes.observe(3.0);
    assert_eq!(phase.count(), 3);
    assert!((phase.sum() - (0.00015 + 0.002 + 99.0)).abs() < 1e-9);

    let text = obs::metrics::render();
    assert!(text.contains("# TYPE rntrajrec_phase_seconds histogram"));
    assert!(text.contains("phase=\"obs_test_phase\""));
    assert!(text.contains("le=\"+Inf\""));
    let errors = obs::promlint::lint(&text);
    assert!(errors.is_empty(), "lint findings: {errors:?}");
}

#[test]
fn lint_rejects_malformed_documents() {
    // TYPE after first sample.
    let errs = obs::promlint::lint("foo 1\n# TYPE foo counter\n");
    assert!(
        errs.iter().any(|e| e.contains("after first sample")),
        "{errs:?}"
    );

    // Missing TYPE entirely.
    let errs = obs::promlint::lint("bar{x=\"1\"} 2\n");
    assert!(errs.iter().any(|e| e.contains("no TYPE")), "{errs:?}");

    // Duplicate series.
    let errs = obs::promlint::lint("# TYPE foo counter\nfoo{a=\"1\"} 1\nfoo{a=\"1\"} 2\n");
    assert!(
        errs.iter().any(|e| e.contains("duplicate series")),
        "{errs:?}"
    );

    // Histogram: non-monotone buckets.
    let errs = obs::promlint::lint(
        "# TYPE h histogram\n\
         h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n\
         h_sum 1\nh_count 5\n",
    );
    assert!(
        errs.iter().any(|e| e.contains("not cumulative")),
        "{errs:?}"
    );

    // Histogram: missing +Inf.
    let errs =
        obs::promlint::lint("# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n");
    assert!(errs.iter().any(|e| e.contains("+Inf")), "{errs:?}");

    // Histogram: _count disagrees with +Inf bucket.
    let errs = obs::promlint::lint(
        "# TYPE h histogram\n\
         h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
    );
    assert!(errs.iter().any(|e| e.contains("!= +Inf")), "{errs:?}");

    // Unparseable value.
    let errs = obs::promlint::lint("# TYPE foo counter\nfoo nope\n");
    assert!(
        errs.iter().any(|e| e.contains("unparseable value")),
        "{errs:?}"
    );
}

#[test]
fn clean_document_with_gauges_counters_and_summary_passes() {
    let text = "\
# HELP rntrajrec_http_responses_total responses by class
# TYPE rntrajrec_http_responses_total counter
rntrajrec_http_responses_total{class=\"2xx\"} 10
rntrajrec_http_responses_total{class=\"4xx\"} 2
# TYPE rntrajrec_engine_queue_depth gauge
rntrajrec_engine_queue_depth 0
# TYPE rntrajrec_http_recover_latency_ms summary
rntrajrec_http_recover_latency_ms{quantile=\"0.5\"} 1.25
rntrajrec_http_recover_latency_ms{quantile=\"0.99\"} 4
";
    let errors = obs::promlint::lint(text);
    assert!(errors.is_empty(), "lint findings: {errors:?}");
}
