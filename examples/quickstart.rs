//! Quickstart: generate a synthetic city, train RNTrajRec for a few epochs,
//! and recover one low-sample trajectory.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use rntrajrec::experiments::{ExperimentScale, Pipeline};
use rntrajrec::model::MethodSpec;
use rntrajrec_synth::DatasetConfig;

fn main() {
    // A small city + 60 simulated trajectories, ϵτ = 8·ϵρ (keep 1 in 8
    // GPS points), split 7:2:1.
    let scale = ExperimentScale {
        num_traj: 60,
        dim: 16,
        epochs: 4,
        batch: 6,
        max_eval: 6,
        seed: 7,
        lr: 3e-3,
    };
    println!("Preparing synthetic dataset (city, trajectories, features)...");
    let pipeline = Pipeline::prepare(DatasetConfig::tiny(8, 60), &scale);
    let stats = pipeline.dataset.stats();
    println!(
        "  city: {} road segments over {:.1} x {:.1} km, eps_rho = {:.0}s, eps_tau = {:.0}s",
        stats.num_segments, stats.area_km2.0, stats.area_km2.1, stats.eps_rho_s, stats.eps_tau_s
    );
    println!(
        "  trajectories: {} train / {} valid / {} test",
        pipeline.train_inputs.len(),
        pipeline.valid_inputs.len(),
        pipeline.test_inputs.len()
    );

    println!("\nTraining RNTrajRec ({} epochs)...", scale.epochs);
    let result = pipeline.train_and_eval(&MethodSpec::RnTrajRec, &scale);
    println!(
        "  trained {} parameters in {:.1}s",
        result.num_params, result.train_secs
    );

    println!(
        "\nTest metrics (averaged over {} trajectories):",
        result.sr_cases.len()
    );
    println!("  recall    {:.4}", result.recall);
    println!("  precision {:.4}", result.precision);
    println!("  F1        {:.4}", result.f1);
    println!("  accuracy  {:.4}", result.accuracy);
    println!("  MAE       {:.1} m (road-network distance)", result.mae_m);
    println!("  RMSE      {:.1} m", result.rmse_m);
    println!("  inference {:.1} ms / trajectory", result.infer_ms);

    // Show one recovered trajectory against the ground truth.
    let (truth, pred) = &result.sr_cases[0];
    println!("\nFirst test trajectory — ground truth vs. recovered segments:");
    println!("  truth: {truth:?}");
    println!("  pred:  {pred:?}");
    let correct = truth.iter().zip(pred).filter(|(a, b)| a == b).count();
    println!(
        "  {} / {} steps on the correct road segment",
        correct,
        truth.len()
    );
}
