//! Online serving demo: train RNTrajRec briefly on a synthetic city, start
//! the micro-batching recovery engine, and stream requests from concurrent
//! clients — then check the served answers against the offline tape path
//! and the ground truth.
//!
//! ```bash
//! cargo run --release --example serve_city
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use rntrajrec::experiments::{ExperimentScale, Pipeline};
use rntrajrec::model::{EndToEnd, MethodSpec};
use rntrajrec::train::{TrainConfig, Trainer};
use rntrajrec_serve::{EngineConfig, RecoveryEngine, ServingModel};
use rntrajrec_synth::DatasetConfig;

fn main() {
    let scale = ExperimentScale {
        num_traj: 60,
        dim: 16,
        epochs: 3,
        batch: 6,
        max_eval: 10,
        seed: 7,
        lr: 3e-3,
    };
    println!("Preparing synthetic city + trajectories...");
    let pipeline = Pipeline::prepare(DatasetConfig::tiny(8, scale.num_traj), &scale);
    let st = pipeline.dataset.stats();
    println!(
        "  {} segments over {:.1} x {:.1} km, {} train / {} test trajectories\n",
        st.num_segments,
        st.area_km2.0,
        st.area_km2.1,
        pipeline.train_inputs.len(),
        pipeline.test_inputs.len()
    );

    println!("Training RNTrajRec for {} epochs...", scale.epochs);
    let mut model = EndToEnd::build(
        &MethodSpec::RnTrajRec,
        &pipeline.dataset.city.net,
        &pipeline.grid,
        scale.dim,
        scale.seed,
    );
    let mut trainer = Trainer::new(TrainConfig {
        epochs: scale.epochs,
        batch_size: scale.batch,
        seed: scale.seed,
        lr: scale.lr,
        ..Default::default()
    });
    trainer.fit(&mut model, &pipeline.train_inputs, None);

    println!("\nStarting the serving engine (road embeddings precomputed once)...");
    let t = Instant::now();
    let serving = Arc::new(ServingModel::new(model).expect("RNTrajRec has a tape-free path"));
    println!(
        "  ServingModel ready in {:.1} ms",
        t.elapsed().as_secs_f64() * 1000.0
    );
    let engine = RecoveryEngine::start(
        Arc::clone(&serving),
        EngineConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            workers: 4,
            threads_per_worker: 0,
            queue_capacity: None,
            ..EngineConfig::default()
        },
    );

    // Four concurrent clients replay the test set as online requests.
    let clients = 4;
    let rounds = 3;
    println!(
        "  {clients} clients x {rounds} rounds over {} test trajectories\n",
        pipeline.test_inputs.len()
    );
    let t = Instant::now();
    let mut results: Vec<Vec<(usize, f32)>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let engine = &engine;
                let inputs = &pipeline.test_inputs;
                s.spawn(move || {
                    let mut out = Vec::new();
                    for _ in 0..rounds {
                        for input in inputs.iter() {
                            out.push(engine.recover(input.clone()).path);
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            results.extend(h.join().expect("client"));
        }
    });
    let wall = t.elapsed().as_secs_f64();
    let stats = engine.stats();
    println!(
        "Served {} requests in {:.2} s ({:.1} req/s)",
        stats.completed,
        wall,
        stats.completed as f64 / wall
    );
    println!(
        "  {} micro-batches (mean size {:.2}; {} flushed full, {} by deadline)",
        stats.batches, stats.mean_batch, stats.flushed_full, stats.flushed_deadline
    );

    // Spot-check: served output == offline tape-free output, and accuracy.
    let mut hits = 0usize;
    let mut total = 0usize;
    for (input, served) in pipeline.test_inputs.iter().zip(&results) {
        let offline = serving.recover(input);
        assert_eq!(
            &offline, served,
            "served path diverged from offline inference"
        );
        for (&(seg, _), &truth) in served.iter().zip(&input.target_segs) {
            hits += (seg == truth) as usize;
            total += 1;
        }
    }
    println!(
        "\nServed output matches offline inference exactly; segment accuracy {:.1}% ({hits}/{total})",
        100.0 * hits as f64 / total.max(1) as f64
    );
}
