//! Case study (paper Fig. 5): recover a low-sample trajectory that drives
//! on the elevated expressway — the road-network structure around it is
//! ambiguous (a trunk road runs directly underneath), so grid/GPS-only
//! encoders confuse the two levels while the road-network-aware model does
//! not. Writes the recovered polylines to `elevated_road_case.json` for
//! plotting.
//!
//! ```bash
//! cargo run --release --example elevated_road
//! ```

use std::fmt::Write as _;

use rntrajrec::experiments::{ExperimentScale, Pipeline};
use rntrajrec::metrics::{path_prf, travel_path};
use rntrajrec::model::MethodSpec;
use rntrajrec_roadnet::{RoadPosition, SegmentId};
use rntrajrec_synth::DatasetConfig;

fn main() {
    let scale = ExperimentScale {
        num_traj: 90,
        dim: 24,
        epochs: 6,
        batch: 8,
        max_eval: 12,
        seed: 7,
        lr: 3e-3,
    };
    // Bias most departures onto the corridor so the case study has
    // elevated trajectories in the test split.
    let mut cfg = DatasetConfig::chengdu(8, 90);
    cfg.corridor_fraction = 0.7;
    println!("Preparing the corridor-heavy dataset...");
    let pipeline = Pipeline::prepare(cfg, &scale);
    let city = &pipeline.dataset.city;
    println!(
        "  elevated segments: {}, trunk segments underneath: {}",
        city.elevated.len(),
        city.trunk_under_elevated.len()
    );

    // Pick a test trajectory that actually uses the corridor.
    let case_idx = (0..pipeline.test_inputs.len())
        .find(|&i| {
            pipeline.test_inputs[i]
                .target_segs
                .iter()
                .any(|&s| pipeline.is_corridor_segment(s))
        })
        .expect("corridor-heavy dataset must contain a corridor test case");
    println!("  case study: test trajectory #{case_idx}\n");

    let methods = [MethodSpec::MTrajRec, MethodSpec::Gts, MethodSpec::RnTrajRec];
    let input = &pipeline.test_inputs[case_idx];
    let truth_path = travel_path(input.target_segs.iter().copied());

    let mut json = String::from("{\n");
    let coords = |segs: &[usize], rates: &[f32]| -> Vec<(f64, f64)> {
        segs.iter()
            .zip(rates)
            .map(|(&s, &r)| {
                let xy = RoadPosition::new(SegmentId(s as u32), r as f64).xy(&city.net);
                (xy.x, xy.y)
            })
            .collect()
    };
    let truth_xy = coords(&input.target_segs, &input.target_rates);
    let _ = writeln!(json, "  \"ground_truth\": {truth_xy:?},");

    for m in &methods {
        let r = pipeline.train_and_eval(m, &scale);
        let (truth, pred) = &r.sr_cases[case_idx];
        let pred_path = travel_path(pred.iter().copied());
        let (_, _, f1) = path_prf(&truth_path, &pred_path);
        let on_corridor_truth = truth
            .iter()
            .filter(|&&s| pipeline.is_corridor_segment(s))
            .count();
        let corridor_correct = truth
            .iter()
            .zip(pred)
            .filter(|(t, p)| pipeline.is_corridor_segment(**t) && t == p)
            .count();
        println!(
            "{:<22} case F1 {:.3} | corridor steps correct {}/{} | overall acc {:.3}",
            r.label, f1, corridor_correct, on_corridor_truth, r.accuracy
        );
        // Reconstruct predicted coordinates for plotting.
        let model_pred = pred.clone();
        let rates = vec![0.5f32; model_pred.len()];
        let xy = coords(&model_pred, &rates);
        let key = r.label.replace([' ', '(', ')', '+'], "_").to_lowercase();
        let _ = writeln!(json, "  \"{key}\": {xy:?},");
    }
    json.push_str("  \"crs\": \"local planar metres\"\n}\n");
    std::fs::write("elevated_road_case.json", &json).expect("write case-study file");
    println!("\nWrote recovered polylines to elevated_road_case.json");
}
