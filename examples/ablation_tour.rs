//! Ablation tour (paper Table V): train RNTrajRec and its five ablated
//! variants and compare, plus the extra constraint-mask ablation.
//!
//! ```bash
//! cargo run --release --example ablation_tour
//! ```

use rntrajrec::experiments::{ExperimentScale, Pipeline};
use rntrajrec::model::MethodSpec;
use rntrajrec_synth::DatasetConfig;

fn main() {
    let scale = ExperimentScale {
        num_traj: 80,
        dim: 16,
        epochs: 5,
        batch: 8,
        max_eval: 8,
        seed: 7,
        lr: 3e-3,
    };
    println!("Preparing the Chengdu-style dataset...");
    let pipeline = Pipeline::prepare(DatasetConfig::chengdu(8, 80), &scale);

    let mut variants = MethodSpec::table5();
    variants.push(MethodSpec::RnTrajRecNoMask); // extra ablation (§V)
    println!(
        "\n{:<16} {:>7} {:>7} {:>7} {:>7} {:>9} {:>9} {:>10}",
        "variant", "recall", "prec", "F1", "acc", "MAE(m)", "RMSE(m)", "params"
    );
    let mut full_f1 = None;
    for v in &variants {
        let r = pipeline.train_and_eval(v, &scale);
        println!(
            "{:<16} {:>7.4} {:>7.4} {:>7.4} {:>7.4} {:>9.1} {:>9.1} {:>10}",
            r.label, r.recall, r.precision, r.f1, r.accuracy, r.mae_m, r.rmse_m, r.num_params
        );
        if *v == MethodSpec::RnTrajRec {
            full_f1 = Some(r.f1);
        }
    }
    if let Some(f1) = full_f1 {
        println!("\nFull model F1 = {f1:.4}; each removed module should cost accuracy/F1.");
    }
}
