//! City-scale comparison: Linear+HMM (two-stage, no learning) versus
//! MTrajRec (the strongest published baseline) versus RNTrajRec, on the
//! Chengdu-style dataset — a miniature of the paper's Table III.
//!
//! ```bash
//! cargo run --release --example recover_city
//! ```

use rntrajrec::experiments::{ExperimentScale, Pipeline};
use rntrajrec::model::MethodSpec;
use rntrajrec_synth::DatasetConfig;

fn main() {
    let scale = ExperimentScale {
        num_traj: 100,
        dim: 24,
        epochs: 6,
        batch: 8,
        max_eval: 10,
        seed: 7,
        lr: 3e-3,
    };
    println!("Preparing the Chengdu-style dataset (eps_tau = eps_rho * 8)...");
    let pipeline = Pipeline::prepare(DatasetConfig::chengdu(8, 100), &scale);
    let st = pipeline.dataset.stats();
    println!(
        "  {} segments, {:.1} x {:.1} km, {} trajectories\n",
        st.num_segments, st.area_km2.0, st.area_km2.1, st.num_trajectories
    );

    let methods = [
        MethodSpec::LinearHmm,
        MethodSpec::MTrajRec,
        MethodSpec::RnTrajRec,
    ];
    println!(
        "{:<24} {:>7} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "method", "recall", "prec", "F1", "acc", "MAE(m)", "RMSE(m)"
    );
    let mut rows = Vec::new();
    for m in &methods {
        let r = pipeline.train_and_eval(m, &scale);
        println!(
            "{:<24} {:>7.4} {:>7.4} {:>7.4} {:>7.4} {:>9.1} {:>9.1}",
            r.label, r.recall, r.precision, r.f1, r.accuracy, r.mae_m, r.rmse_m
        );
        rows.push(r);
    }

    // The paper's headline claim: the road-network-aware encoder wins.
    let linear = &rows[0];
    let rn = &rows[2];
    println!(
        "\nRNTrajRec vs Linear+HMM: F1 {:+.1}%, accuracy {:+.1}%, MAE {:+.1} m",
        100.0 * (rn.f1 - linear.f1),
        100.0 * (rn.accuracy - linear.accuracy),
        rn.mae_m - linear.mae_m,
    );
}
