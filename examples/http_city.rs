//! HTTP serving demo: boot the full serving stack — micro-batching engine
//! plus the HTTP/1.1 front-end — over a synthetic city, then act as a
//! client: fetch `/healthz`, post wire-format recovery requests, and show
//! that what comes back over TCP is exactly what in-process dispatch
//! produces. Finishes with a look at `/metrics` and a graceful drain.
//!
//! ```bash
//! cargo run --release --example http_city
//! ```

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rntrajrec::model::{EndToEnd, MethodSpec};
use rntrajrec::wire::{RecoverRequest, RecoverResponse};
use rntrajrec_roadnet::{CityConfig, SyntheticCity};
use rntrajrec_serve::http::client;
use rntrajrec_serve::{
    EngineConfig, HttpConfig, HttpServer, QueryContext, RecoveryEngine, ServingModel,
};
use rntrajrec_synth::{SimConfig, Simulator, TrajSample};

fn main() {
    println!("Preparing synthetic city + serving model...");
    let city = SyntheticCity::generate(CityConfig::tiny());
    let grid = city.net.grid(50.0);
    let model = EndToEnd::build(&MethodSpec::RnTrajRec, &city.net, &grid, 16, 7);
    let serving = Arc::new(ServingModel::new(model).expect("RNTrajRec has a tape-free path"));

    // Simulate a few low-sample trajectories to replay as online queries.
    let mut sim = Simulator::new(&city.net, SimConfig::default());
    let mut rng = StdRng::seed_from_u64(41);
    let samples: Vec<TrajSample> = (0..5).map(|_| sim.sample(&mut rng, 8)).collect();

    let ctx = Arc::new(QueryContext::new(city.net, 50.0));
    let engine = Arc::new(RecoveryEngine::start(
        Arc::clone(&serving),
        EngineConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            workers: 2,
            threads_per_worker: 0,
            queue_capacity: Some(64),
            ..EngineConfig::default()
        },
    ));
    let server = HttpServer::start(
        Arc::clone(&engine),
        Arc::clone(&ctx),
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            ..HttpConfig::default()
        },
        None,
    )
    .expect("bind an ephemeral port");
    let addr = server.local_addr();
    println!("Serving on http://{addr}\n");

    let health = client::get(addr, "/healthz").expect("healthz");
    println!("GET /healthz -> {} {}", health.status, health.body);

    println!("\nPOST /v1/recover x{}:", samples.len());
    for (i, s) in samples.iter().enumerate() {
        let req = RecoverRequest::from_raw(&s.raw, s.target.len(), s.depart_epoch_s);
        let body = serde_json::to_string(&req).expect("serializes");
        let resp = client::post_json(addr, "/v1/recover", &body).expect("roundtrip");
        assert_eq!(resp.status, 200, "{}", resp.body);
        let parsed = RecoverResponse::from_json(&resp.body).expect("well-formed");

        // The wire adds nothing and loses nothing: bit-identical to
        // dispatching the same request in-process.
        let in_process = engine
            .recover(ctx.sample_input(&req).expect("valid request"))
            .path;
        assert_eq!(parsed.path(), in_process, "HTTP diverged from in-process");

        println!(
            "  [{i}] {} raw pts -> {} recovered steps in {:.2} ms (batch {}), first segs {:?}",
            req.points.len(),
            parsed.segments.len(),
            parsed.latency_ms,
            parsed.batch_size,
            &parsed.segments[..parsed.segments.len().min(6)],
        );
    }

    let metrics = client::get(addr, "/metrics").expect("metrics");
    println!("\nGET /metrics (excerpt):");
    for line in metrics.body.lines().filter(|l| {
        l.starts_with("rntrajrec_http_responses_total")
            || l.starts_with("rntrajrec_engine_completed_total")
            || l.starts_with("rntrajrec_http_recover_latency_ms")
    }) {
        println!("  {line}");
    }

    println!("\nHTTP recovery matches in-process dispatch exactly; draining...");
    server.shutdown();
    drop(engine);
    println!("Drained cleanly.");
}
